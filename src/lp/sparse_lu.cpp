#include "lp/sparse_lu.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace tsce::lp {
namespace {

/// Relative stability threshold for Markowitz pivoting: a candidate must be
/// at least this fraction of the largest magnitude in its column.  The
/// classic 0.1 compromise keeps growth bounded while leaving the pivot
/// search free to chase sparsity.
constexpr double kMarkowitzThreshold = 0.1;

struct ActiveEntry {
  std::int32_t row;  ///< -1 marks a cancelled (tombstoned) entry
  double value;
};

}  // namespace

bool BasisLu::factorize(const CscMatrix& a, const std::vector<std::int32_t>& basis,
                        double pivot_tol) {
  m_ = basis.size();
  assert(a.rows == m_ && "basis must be square");
  const auto m = static_cast<std::int32_t>(m_);

  prow_.assign(m_, -1);
  pcol_.assign(m_, -1);
  step_of_row_.assign(m_, -1);
  u_diag_.assign(m_, 0.0);
  l_entries_.clear();
  u_entries_.clear();
  l_start_.assign(m_ + 1, 0);
  u_start_.assign(m_ + 1, 0);
  eta_.clear();
  eta_entries_.clear();
  work_.assign(m_, 0.0);
  touched_.clear();
  touched_.reserve(m_);
  mark_.assign(m_, 0);
  if (m_ == 0) return true;

  // Active submatrix: column-major entry lists (fill-in appended, exact
  // cancellations tombstoned) plus a row -> column-position pattern that may
  // carry stale or duplicate columns — every consumer re-validates against
  // the column store, and the per-step `gathered` marks dedupe.
  std::vector<std::vector<ActiveEntry>> col(m_);
  std::vector<std::vector<std::int32_t>> row_cols(m_);
  std::vector<std::int32_t> col_count(m_, 0), row_count(m_, 0);
  std::vector<std::uint8_t> row_active(m_, 1), col_active(m_, 1);
  std::vector<std::uint8_t> gathered(m_, 0);

  for (std::int32_t p = 0; p < m; ++p) {
    const auto j = static_cast<std::size_t>(basis[static_cast<std::size_t>(p)]);
    assert(j < a.cols);
    const auto begin = static_cast<std::size_t>(a.col_start[j]);
    const auto end = static_cast<std::size_t>(a.col_start[j + 1]);
    col[static_cast<std::size_t>(p)].reserve(end - begin + 4);
    for (std::size_t idx = begin; idx < end; ++idx) {
      const std::int32_t r = a.row_index[idx];
      col[static_cast<std::size_t>(p)].push_back({r, a.value[idx]});
      row_cols[static_cast<std::size_t>(r)].push_back(p);
    }
    col_count[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(end - begin);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    row_count[i] = static_cast<std::int32_t>(row_cols[i].size());
  }

  // Singleton queues, FIFO with lazy validation: stale entries (count moved
  // on, or already pivoted) are skipped on pop.
  std::vector<std::int32_t> col_single, row_single;
  std::size_t col_single_head = 0, row_single_head = 0;
  for (std::int32_t p = 0; p < m; ++p) {
    if (col_count[static_cast<std::size_t>(p)] == 1) col_single.push_back(p);
  }
  for (std::int32_t i = 0; i < m; ++i) {
    if (row_count[static_cast<std::size_t>(i)] == 1) row_single.push_back(i);
  }

  const auto live_value = [&](std::int32_t c, std::int32_t r, bool& found) -> double {
    found = false;
    for (const ActiveEntry& e : col[static_cast<std::size_t>(c)]) {
      if (e.row == r) {
        found = true;
        return e.value;
      }
    }
    return 0.0;
  };

  std::vector<std::pair<std::int32_t, double>> pivot_row;  // (col position, value)
  std::vector<std::pair<std::int32_t, double>> pivot_col;  // (row, value)

  for (std::size_t k = 0; k < m_; ++k) {
    std::int32_t pi = -1, pj = -1;
    double pd = 0.0;

    // 1. Column singletons: zero fill, no multipliers.
    while (pj < 0 && col_single_head < col_single.size()) {
      const std::int32_t p = col_single[col_single_head++];
      if (!col_active[static_cast<std::size_t>(p)] ||
          col_count[static_cast<std::size_t>(p)] != 1) {
        continue;
      }
      for (const ActiveEntry& e : col[static_cast<std::size_t>(p)]) {
        if (e.row >= 0 && row_active[static_cast<std::size_t>(e.row)]) {
          // The column's only entry: below tolerance the basis is singular —
          // no other row can ever cover this column.
          if (std::abs(e.value) < pivot_tol) return false;
          pi = e.row;
          pj = p;
          pd = e.value;
          break;
        }
      }
    }
    // 2. Row singletons: zero fill, empty U row.
    while (pj < 0 && row_single_head < row_single.size()) {
      const std::int32_t i = row_single[row_single_head++];
      if (!row_active[static_cast<std::size_t>(i)] ||
          row_count[static_cast<std::size_t>(i)] != 1) {
        continue;
      }
      for (const std::int32_t c : row_cols[static_cast<std::size_t>(i)]) {
        if (!col_active[static_cast<std::size_t>(c)]) continue;
        bool found = false;
        const double v = live_value(c, i, found);
        if (!found) continue;  // stale pattern entry
        if (std::abs(v) < pivot_tol) return false;
        pi = i;
        pj = c;
        pd = v;
        break;
      }
    }
    // 3. Markowitz: scan active columns in index order; within a column,
    // candidates must pass the relative threshold; best by
    // (cost, column, row).  Columns whose floor cost (count-1)·1 cannot
    // strictly beat the incumbent are skipped — consistent with the
    // ascending-index tie rule, so the choice stays deterministic.
    if (pj < 0) {
      std::size_t best_cost = static_cast<std::size_t>(-1);
      for (std::int32_t p = 0; p < m; ++p) {
        if (!col_active[static_cast<std::size_t>(p)]) continue;
        const auto cnt = static_cast<std::size_t>(col_count[static_cast<std::size_t>(p)]);
        if (pj >= 0 && cnt - 1 >= best_cost) continue;
        double colmax = 0.0;
        for (const ActiveEntry& e : col[static_cast<std::size_t>(p)]) {
          if (e.row < 0 || !row_active[static_cast<std::size_t>(e.row)]) continue;
          colmax = std::max(colmax, std::abs(e.value));
        }
        const double accept = std::max(pivot_tol, kMarkowitzThreshold * colmax);
        for (const ActiveEntry& e : col[static_cast<std::size_t>(p)]) {
          if (e.row < 0 || !row_active[static_cast<std::size_t>(e.row)]) continue;
          if (std::abs(e.value) < accept) continue;
          const auto rc = static_cast<std::size_t>(
              row_count[static_cast<std::size_t>(e.row)]);
          const std::size_t cost = (rc - 1) * (cnt - 1);
          if (pj < 0 || cost < best_cost ||
              (cost == best_cost && e.row < pi)) {
            best_cost = cost;
            pi = e.row;
            pj = p;
            pd = e.value;
          }
        }
      }
      if (pj < 0) return false;  // no admissible pivot: singular
    }

    // Gather the pivot row (future U row k) and pivot column (future L
    // column k); `gathered` dedupes stale duplicates in row_cols.
    pivot_row.clear();
    for (const std::int32_t c : row_cols[static_cast<std::size_t>(pi)]) {
      if (c == pj || !col_active[static_cast<std::size_t>(c)]) continue;
      if (gathered[static_cast<std::size_t>(c)]) continue;
      bool found = false;
      const double v = live_value(c, pi, found);
      if (!found) continue;
      gathered[static_cast<std::size_t>(c)] = 1;
      pivot_row.emplace_back(c, v);
    }
    for (const auto& rc : pivot_row) gathered[static_cast<std::size_t>(rc.first)] = 0;
    pivot_col.clear();
    for (const ActiveEntry& e : col[static_cast<std::size_t>(pj)]) {
      if (e.row < 0 || e.row == pi || !row_active[static_cast<std::size_t>(e.row)]) {
        continue;
      }
      pivot_col.emplace_back(e.row, e.value);
    }

    // Record factors.
    prow_[k] = pi;
    pcol_[k] = pj;
    u_diag_[k] = pd;
    for (const auto& [c, v] : pivot_row) u_entries_.push_back({c, v});
    u_start_[k + 1] = u_entries_.size();
    for (const auto& [r, v] : pivot_col) l_entries_.push_back({r, v / pd});
    l_start_[k + 1] = l_entries_.size();

    // Rank-1 update of the active submatrix.
    for (const auto& [r, vr] : pivot_col) {
      const double mult = vr / pd;
      for (const auto& [c, vc] : pivot_row) {
        auto& column = col[static_cast<std::size_t>(c)];
        ActiveEntry* hit = nullptr;
        for (ActiveEntry& e : column) {
          if (e.row == r) {
            hit = &e;
            break;
          }
        }
        if (hit != nullptr) {
          hit->value -= mult * vc;
          if (hit->value == 0.0) {  // exact cancellation: drop the entry
            hit->row = -1;
            if (--col_count[static_cast<std::size_t>(c)] == 1) col_single.push_back(c);
            if (--row_count[static_cast<std::size_t>(r)] == 1) row_single.push_back(r);
          }
        } else {
          column.push_back({r, -mult * vc});
          row_cols[static_cast<std::size_t>(r)].push_back(c);
          ++col_count[static_cast<std::size_t>(c)];
          ++row_count[static_cast<std::size_t>(r)];
        }
      }
    }

    // Retire the pivot row/column and fix up neighbour counts.
    row_active[static_cast<std::size_t>(pi)] = 0;
    col_active[static_cast<std::size_t>(pj)] = 0;
    for (const auto& rv : pivot_col) {
      if (--row_count[static_cast<std::size_t>(rv.first)] == 1) {
        row_single.push_back(rv.first);
      }
    }
    for (const auto& cv : pivot_row) {
      if (--col_count[static_cast<std::size_t>(cv.first)] == 1) {
        col_single.push_back(cv.first);
      }
    }
  }

  for (std::size_t k = 0; k < m_; ++k) {
    step_of_row_[static_cast<std::size_t>(prow_[k])] = static_cast<std::int32_t>(k);
  }
  return true;
}

TSCE_HOT void BasisLu::ftran(IndexedVector& v) const {
  const std::size_t m = m_;
  if (m == 0) return;

  // 1. Apply the elimination operations (L^-1) in step order, in row space.
  // The pivot row's value is final once its step is reached, so zero pivot
  // values skip the whole step — this is where rhs sparsity pays.
  for (const std::int32_t i : v.pattern) mark_[static_cast<std::size_t>(i)] = 1;
  for (std::size_t k = 0; k < m; ++k) {
    const double t = v.values[static_cast<std::size_t>(prow_[k])];
    if (t == 0.0) continue;
    for (std::size_t e = l_start_[k]; e < l_start_[k + 1]; ++e) {
      const auto r = static_cast<std::size_t>(l_entries_[e].index);
      if (!mark_[r]) {
        mark_[r] = 1;
        v.note(l_entries_[e].index);
      }
      v.values[r] -= l_entries_[e].value * t;
    }
  }

  // Gather into step-indexed scratch; release v for the position-space result.
  touched_.clear();
  for (const std::int32_t i : v.pattern) {
    const auto u = static_cast<std::size_t>(i);
    mark_[u] = 0;
    if (v.values[u] != 0.0) {
      const std::int32_t k = step_of_row_[u];
      work_[static_cast<std::size_t>(k)] = v.values[u];
      touched_.push_back(k);
    }
  }
  v.clear();

  // 2. Back substitution through U in reverse step order.  Cost is bounded
  // by O(m + nnz(U)) — the per-step scan is what propagates fill, so unlike
  // the L pass it cannot skip on a zero pivot value alone.
  for (std::size_t k = m; k-- > 0;) {
    double t = work_[k];
    for (std::size_t e = u_start_[k]; e < u_start_[k + 1]; ++e) {
      const double xc = v.values[static_cast<std::size_t>(u_entries_[e].index)];
      if (xc != 0.0) t -= u_entries_[e].value * xc;
    }
    if (t != 0.0) {
      v.values[static_cast<std::size_t>(pcol_[k])] = t / u_diag_[k];
      v.note(pcol_[k]);
    }
  }
  for (const std::int32_t k : touched_) work_[static_cast<std::size_t>(k)] = 0.0;
  for (const std::int32_t i : v.pattern) mark_[static_cast<std::size_t>(i)] = 1;

  // 3. Eta file, oldest first: x_r /= w_r, then x_i -= w_i * x_r.
  for (const Eta& eta : eta_) {
    const auto r = static_cast<std::size_t>(eta.pivot_pos);
    const double xr = v.values[r];
    if (xr == 0.0) continue;
    const double scaled = xr / eta.pivot_value;
    v.values[r] = scaled;
    for (std::size_t e = eta.start; e < eta.end; ++e) {
      const auto i = static_cast<std::size_t>(eta_entries_[e].index);
      if (!mark_[i]) {
        mark_[i] = 1;
        v.note(eta_entries_[e].index);
      }
      v.values[i] -= eta_entries_[e].value * scaled;
    }
  }
  for (const std::int32_t i : v.pattern) mark_[static_cast<std::size_t>(i)] = 0;
}

TSCE_HOT void BasisLu::btran(IndexedVector& v) const {
  const std::size_t m = m_;
  if (m == 0) return;

  // 1. Eta file transposed, newest first: only component r changes,
  // v_r = (v_r - Σ_{i≠r} w_i v_i) / w_r.
  for (const std::int32_t i : v.pattern) mark_[static_cast<std::size_t>(i)] = 1;
  for (std::size_t q = eta_.size(); q-- > 0;) {
    const Eta& eta = eta_[q];
    const auto r = static_cast<std::size_t>(eta.pivot_pos);
    double t = v.values[r];
    for (std::size_t e = eta.start; e < eta.end; ++e) {
      const double vi = v.values[static_cast<std::size_t>(eta_entries_[e].index)];
      if (vi != 0.0) t -= eta_entries_[e].value * vi;
    }
    t /= eta.pivot_value;
    if (t != 0.0 && !mark_[r]) {
      mark_[r] = 1;
      v.note(eta.pivot_pos);
    }
    v.values[r] = t;
  }

  // 2. Forward substitution through U^T in step order (row-access form):
  // z_k = b̂_{j_k} / d_k, then scatter −u_{k,c}·z_k into b̂.
  touched_.clear();
  for (std::size_t k = 0; k < m; ++k) {
    const double t = v.values[static_cast<std::size_t>(pcol_[k])];
    if (t == 0.0) continue;
    const double z = t / u_diag_[k];
    work_[k] = z;
    touched_.push_back(static_cast<std::int32_t>(k));
    for (std::size_t e = u_start_[k]; e < u_start_[k + 1]; ++e) {
      const auto c = static_cast<std::size_t>(u_entries_[e].index);
      if (!mark_[c]) {
        mark_[c] = 1;
        v.note(u_entries_[e].index);
      }
      v.values[c] -= u_entries_[e].value * z;
    }
  }
  for (const std::int32_t i : v.pattern) mark_[static_cast<std::size_t>(i)] = 0;
  v.clear();

  // 3. Apply the transposed eliminations in reverse step order, into row
  // space: w_{i_k} = z_k − Σ multipliers·w_r (rows r pivoted later, already
  // final).  prow_ is a permutation, so each index is written once.
  for (std::size_t k = m; k-- > 0;) {
    double t = work_[k];
    for (std::size_t e = l_start_[k]; e < l_start_[k + 1]; ++e) {
      const double wr = v.values[static_cast<std::size_t>(l_entries_[e].index)];
      if (wr != 0.0) t -= l_entries_[e].value * wr;
    }
    if (t != 0.0) {
      v.values[static_cast<std::size_t>(prow_[k])] = t;
      v.note(prow_[k]);
    }
  }
  for (const std::int32_t k : touched_) work_[static_cast<std::size_t>(k)] = 0.0;
}

bool BasisLu::push_eta(const IndexedVector& w, std::size_t leave_pos,
                       double pivot_tol) {
  const double wr = w.values[leave_pos];
  if (std::abs(wr) < pivot_tol) return false;
  const std::size_t start = eta_entries_.size();
  for (const std::int32_t i : w.pattern) {
    if (static_cast<std::size_t>(i) == leave_pos) continue;
    const double v = w.values[static_cast<std::size_t>(i)];
    if (v != 0.0) eta_entries_.push_back({i, v});
  }
  eta_.push_back({start, eta_entries_.size(),
                  static_cast<std::int32_t>(leave_pos), wr});
  return true;
}

}  // namespace tsce::lp
