/// \file problem.hpp
/// Declarative linear-program container used by the simplex solver.
///
/// Variables carry bounds and objective coefficients; rows are built from
/// coefficient triplets and a relation (<=, =, >=) with a right-hand side.
/// The container is solver-agnostic storage: solve() (simplex.hpp) converts
/// it to computational form.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tsce::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct Triplet {
  std::int32_t row;
  std::int32_t col;
  double value;
};

class LpProblem {
 public:
  explicit LpProblem(Sense sense = Sense::kMinimize) : sense_(sense) {}

  /// Adds a variable with bounds [lo, hi] and objective coefficient \p cost.
  std::int32_t add_variable(double lo, double hi, double cost);

  /// Adds a row "sum of coefficients <relation> rhs"; coefficients are
  /// attached afterwards with add_coefficient.
  std::int32_t add_row(Relation relation, double rhs);

  /// Accumulates A[row, col] += value (duplicates are summed on assembly).
  void add_coefficient(std::int32_t row, std::int32_t col, double value);

  /// Empties the problem (variables, rows, triplets) while keeping the
  /// vectors' capacity, so a rebuilt same-shaped problem allocates nothing.
  void clear(Sense sense = Sense::kMinimize) noexcept;

  [[nodiscard]] Sense sense() const noexcept { return sense_; }
  [[nodiscard]] std::size_t num_variables() const noexcept { return lower_.size(); }
  [[nodiscard]] std::size_t num_rows() const noexcept { return relation_.size(); }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept { return triplets_.size(); }

  [[nodiscard]] double lower(std::int32_t v) const noexcept { return lower_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] double upper(std::int32_t v) const noexcept { return upper_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] double cost(std::int32_t v) const noexcept { return cost_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] Relation relation(std::int32_t r) const noexcept { return relation_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] double rhs(std::int32_t r) const noexcept { return rhs_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const std::vector<Triplet>& triplets() const noexcept { return triplets_; }

 private:
  Sense sense_;
  std::vector<double> lower_, upper_, cost_;
  std::vector<Relation> relation_;
  std::vector<double> rhs_;
  std::vector<Triplet> triplets_;
};

/// Compressed sparse column matrix assembled from triplets.
struct CscMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int64_t> col_start;  ///< size cols + 1
  std::vector<std::int32_t> row_index;
  std::vector<double> value;

  static CscMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 const std::vector<Triplet>& triplets);
};

}  // namespace tsce::lp
