#include "lp/upper_bound.hpp"

#include <cassert>

namespace tsce::lp {

using model::SystemModel;

namespace {

/// Variable index bookkeeping for the fractional-mapping LP.
class UbIndexer {
 public:
  explicit UbIndexer(const SystemModel& model) : m_(model.num_machines()) {
    x_base_.reserve(model.num_strings());
    y_base_.reserve(model.num_strings());
    std::int32_t next = 0;
    for (const auto& s : model.strings) {
      x_base_.push_back(next);
      next += static_cast<std::int32_t>(s.size() * m_);
      y_base_.push_back(next);
      const std::size_t edges = s.size() > 0 ? s.size() - 1 : 0;
      next += static_cast<std::int32_t>(edges * m_ * m_);
    }
    total_ = next;
  }

  [[nodiscard]] std::int32_t x(std::size_t k, std::size_t i, std::size_t j) const noexcept {
    return x_base_[k] + static_cast<std::int32_t>(i * m_ + j);
  }
  [[nodiscard]] std::int32_t y(std::size_t k, std::size_t i, std::size_t j1,
                               std::size_t j2) const noexcept {
    return y_base_[k] + static_cast<std::int32_t>(i * m_ * m_ + j1 * m_ + j2);
  }
  [[nodiscard]] std::int32_t count() const noexcept { return total_; }

 private:
  std::size_t m_;
  std::vector<std::int32_t> x_base_;
  std::vector<std::int32_t> y_base_;
  std::int32_t total_ = 0;
};

}  // namespace

std::size_t upper_bound_route_rows(const SystemModel& model) {
  const std::size_t m = model.num_machines();
  for (const auto& s : model.strings) {
    if (s.size() > 1) return m * (m - 1);
  }
  return 0;
}

void build_upper_bound_lp_into(LpProblem& problem, const SystemModel& model,
                               bool complete, UbObjective objective) {
  const std::size_t m = model.num_machines();
  const std::size_t q = model.num_strings();
  const UbIndexer idx(model);

  problem.clear(Sense::kMaximize);
  std::int32_t lambda = -1;  // slackness variable, complete mode only

  // Variables: all fractions in [0,1], with the objective coefficients
  // attached at creation.  Layout must match UbIndexer (asserted below).
  for (std::size_t k = 0; k < q; ++k) {
    const auto& s = model.strings[k];
    const double worth = s.worth_factor();
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        double cost = 0.0;
        if (!complete) {
          if (objective == UbObjective::kPaperLiteral) {
            cost = worth;
          } else if (i == 0) {
            // f_k = sum_j x[0,k,j]; worth accrues once per string.
            cost = worth;
          }
        }
        const std::int32_t v = problem.add_variable(0.0, 1.0, cost);
        assert(v == idx.x(k, i, j));
        (void)v;
      }
    }
    const std::size_t edges = s.size() > 0 ? s.size() - 1 : 0;
    for (std::size_t i = 0; i < edges; ++i) {
      for (std::size_t j1 = 0; j1 < m; ++j1) {
        for (std::size_t j2 = 0; j2 < m; ++j2) {
          const std::int32_t v = problem.add_variable(0.0, 1.0, 0.0);
          assert(v == idx.y(k, i, j1, j2));
          (void)v;
        }
      }
    }
  }
  if (complete) {
    lambda = problem.add_variable(0.0, 1.0, 1.0);  // maximize slackness
  }

  // (a) deployment fraction of each string, via its first application.
  for (std::size_t k = 0; k < q; ++k) {
    const std::int32_t row =
        problem.add_row(complete ? Relation::kEqual : Relation::kLessEqual, 1.0);
    for (std::size_t j = 0; j < m; ++j) {
      problem.add_coefficient(row, idx.x(k, 0, j), 1.0);
    }
  }

  // (b) equal fractions along each string.
  for (std::size_t k = 0; k < q; ++k) {
    const auto& s = model.strings[k];
    for (std::size_t i = 1; i < s.size(); ++i) {
      const std::int32_t row = problem.add_row(Relation::kEqual, 0.0);
      for (std::size_t j = 0; j < m; ++j) {
        problem.add_coefficient(row, idx.x(k, i, j), 1.0);
        problem.add_coefficient(row, idx.x(k, 0, j), -1.0);
      }
    }
  }

  // (d) an application fraction on j1 emits the same fraction of its output:
  //     sum_{j2} y[i,k,j1,j2] = x[i,k,j1].
  // (e) and its successor's fraction on j2 receives it:
  //     sum_{j1} y[i,k,j1,j2] = x[i+1,k,j2].
  for (std::size_t k = 0; k < q; ++k) {
    const auto& s = model.strings[k];
    const std::size_t edges = s.size() > 0 ? s.size() - 1 : 0;
    for (std::size_t i = 0; i < edges; ++i) {
      for (std::size_t j1 = 0; j1 < m; ++j1) {
        const std::int32_t row = problem.add_row(Relation::kEqual, 0.0);
        for (std::size_t j2 = 0; j2 < m; ++j2) {
          problem.add_coefficient(row, idx.y(k, i, j1, j2), 1.0);
        }
        problem.add_coefficient(row, idx.x(k, i, j1), -1.0);
      }
      for (std::size_t j2 = 0; j2 < m; ++j2) {
        const std::int32_t row = problem.add_row(Relation::kEqual, 0.0);
        for (std::size_t j1 = 0; j1 < m; ++j1) {
          problem.add_coefficient(row, idx.y(k, i, j1, j2), 1.0);
        }
        problem.add_coefficient(row, idx.x(k, i + 1, j2), -1.0);
      }
    }
  }

  // (f) machine capacity: sum of per-app utilization contributions <= 1
  //     (<= 1 - lambda in complete mode).
  for (std::size_t j = 0; j < m; ++j) {
    const std::int32_t row = problem.add_row(Relation::kLessEqual, 1.0);
    for (std::size_t k = 0; k < q; ++k) {
      const auto& s = model.strings[k];
      for (std::size_t i = 0; i < s.size(); ++i) {
        const double coeff = s.apps[i].cpu_work(j) / s.period_s;
        problem.add_coefficient(row, idx.x(k, i, j), coeff);
      }
    }
    if (complete) problem.add_coefficient(row, lambda, 1.0);
  }

  // (g) route capacity.  Without any inter-app edge there are no y variables
  // and every route row would be empty (or carry only the redundant
  // lambda <= 1, already enforced by lambda's bounds) — skip the whole
  // M(M-1) block.  Fleet-scale single-app workloads (the TDM-client shape)
  // are exactly this case.
  if (upper_bound_route_rows(model) > 0) {
    for (std::size_t j1 = 0; j1 < m; ++j1) {
      for (std::size_t j2 = 0; j2 < m; ++j2) {
        if (j1 == j2) continue;  // infinite intra-machine bandwidth
        const std::int32_t row = problem.add_row(Relation::kLessEqual, 1.0);
        const double w = model.network.bandwidth_mbps(static_cast<model::MachineId>(j1),
                                                      static_cast<model::MachineId>(j2));
        for (std::size_t k = 0; k < q; ++k) {
          const auto& s = model.strings[k];
          const std::size_t edges = s.size() > 0 ? s.size() - 1 : 0;
          for (std::size_t i = 0; i < edges; ++i) {
            const double coeff =
                model::kbytes_to_megabits(s.apps[i].output_kbytes) / s.period_s / w;
            problem.add_coefficient(row, idx.y(k, i, j1, j2), coeff);
          }
        }
        if (complete) problem.add_coefficient(row, lambda, 1.0);
      }
    }
  }
}

LpProblem build_upper_bound_lp(const SystemModel& model, bool complete,
                               UbObjective objective) {
  LpProblem problem(Sense::kMaximize);
  build_upper_bound_lp_into(problem, model, complete, objective);
  return problem;
}

namespace {

UpperBoundResult extract_result(const LpProblem& problem,
                                const LpSolution& solution,
                                const SystemModel& model, bool complete) {
  UpperBoundResult result;
  result.status = solution.status;
  result.lp_rows = problem.num_rows();
  result.lp_cols = problem.num_variables();
  result.iterations = solution.iterations;
  result.refactorisations = solution.refactorisations;
  if (solution.status != SolveStatus::kOptimal) return result;

  // Rows were appended in the order (a), (b), (d)/(e), (f), (g): the machine
  // capacity rows start right before the M + route_rows tail (route_rows is
  // zero when the (g) block was omitted — see build_upper_bound_lp).
  {
    const std::size_t m = model.num_machines();
    const std::size_t route_rows = upper_bound_route_rows(model);
    const std::size_t machine_rows_start = problem.num_rows() - m - route_rows;
    result.machine_shadow_price.assign(m, 0.0);
    result.route_shadow_price.assign(m * m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      result.machine_shadow_price[j] = solution.row_duals[machine_rows_start + j];
    }
    if (route_rows > 0) {
      std::size_t row = machine_rows_start + m;
      for (std::size_t j1 = 0; j1 < m; ++j1) {
        for (std::size_t j2 = 0; j2 < m; ++j2) {
          if (j1 == j2) continue;
          result.route_shadow_price[j1 * m + j2] = solution.row_duals[row++];
        }
      }
    }
  }

  if (complete) {
    // Objective is lambda itself.
    result.value = solution.objective;
  } else {
    // Report total worth as sum I[k] * f_k regardless of the LP objective so
    // the number is comparable with the heuristics.
    const UbIndexer idx(model);
    const std::size_t m = model.num_machines();
    result.string_fractions.resize(model.num_strings(), 0.0);
    double worth = 0.0;
    for (std::size_t k = 0; k < model.num_strings(); ++k) {
      double f = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        f += solution.x[static_cast<std::size_t>(idx.x(k, 0, j))];
      }
      result.string_fractions[k] = f;
      worth += model.strings[k].worth_factor() * f;
    }
    result.value = worth;
  }
  return result;
}

UpperBoundResult run(const SystemModel& model, bool complete,
                     const UpperBoundOptions& options) {
  const LpProblem problem =
      build_upper_bound_lp(model, complete, options.objective);
  const LpSolution solution = solve(problem, options.simplex);
  return extract_result(problem, solution, model, complete);
}

}  // namespace

UpperBoundResult upper_bound_worth(const SystemModel& model,
                                   UpperBoundOptions options) {
  return run(model, /*complete=*/false, options);
}

UpperBoundResult upper_bound_slackness(const SystemModel& model,
                                       UpperBoundOptions options) {
  return run(model, /*complete=*/true, options);
}

UpperBoundResult UpperBoundSolver::run_reusable(const SystemModel& model,
                                                bool complete) {
  build_upper_bound_lp_into(problem_, model, complete, options_.objective);
  UpperBoundOptions opts = options_;
  if (warm_start_ && !last_basis_.empty()) {
    opts.simplex.basis_warm_start = &last_basis_;
  }
  const LpSolution solution = solve(problem_, opts.simplex);
  if (solution.status == SolveStatus::kOptimal && !solution.basis.empty()) {
    last_basis_ = solution.basis;
  }
  return extract_result(problem_, solution, model, complete);
}

UpperBoundResult UpperBoundSolver::worth(const SystemModel& model) {
  return run_reusable(model, /*complete=*/false);
}

UpperBoundResult UpperBoundSolver::slackness(const SystemModel& model) {
  return run_reusable(model, /*complete=*/true);
}

}  // namespace tsce::lp
