/// \file hot.hpp
/// TSCE_HOT marks functions on the steady-state decode/evaluate hot path.
///
/// The marker does two things: it hints the optimizer ([[gnu::hot]] where
/// supported), and it opts the function into the tsce_analyze `no-alloc-hot`
/// rule, which forbids per-call heap allocation inside the body (`new`,
/// make_unique/make_shared, push_back without a visible reserve).  The
/// runtime counterpart is the heap-counting decode test
/// (tests/core/no_alloc_decode_test.cpp), which asserts zero allocations on
/// the warmed-up decode path.

#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define TSCE_HOT [[gnu::hot]]
#else
#define TSCE_HOT
#endif
