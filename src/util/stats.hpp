/// \file stats.hpp
/// Streaming statistics and confidence intervals.
///
/// The paper reports every experiment as a mean over 100 simulation runs with
/// a 95% confidence interval; RunningStats (Welford accumulation) plus
/// student_t_quantile_95 reproduce that reporting.

#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace tsce::util {

/// Numerically stable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the 95% confidence interval for the mean (Student t).
  [[nodiscard]] double ci95_half_width() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student-t quantile t_{0.975,df}.  Exact table for small df,
/// asymptotic expansion beyond; accurate to ~1e-3 which is ample for
/// reporting confidence intervals.
[[nodiscard]] double student_t_quantile_95(std::size_t df) noexcept;

/// Formats "mean ± ci95" with a fixed number of decimals.
[[nodiscard]] std::string format_mean_ci(const RunningStats& s, int decimals = 1);

/// Mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

}  // namespace tsce::util
