#include "util/rng.hpp"

namespace tsce::util {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.  The rejection loop runs at most a
  // handful of times even for adversarial bounds.
  if (bound == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace tsce::util
