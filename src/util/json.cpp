#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tsce::util {

const Json& Json::at(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw std::out_of_range("Json: missing key '" + std::string(key) + "'");
}

bool Json::contains(std::string_view key) const noexcept {
  if (!is_object()) return false;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return true;
  }
  return false;
}

void Json::set(std::string key, Json value) {
  as_object().emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) { as_array().push_back(std::move(value)); }

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw JsonParseError("trailing characters", pos_);
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object fields;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(fields));
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      fields.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(fields));
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    // Surrogate pairs for characters outside the BMP.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 6 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      unsigned low = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = text_[pos_++];
        low <<= 4;
        if (c >= '0' && c <= '9') {
          low |= static_cast<unsigned>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          low |= static_cast<unsigned>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          low |= static_cast<unsigned>(c - 'A' + 10);
        } else {
          fail("invalid \\u escape digit");
        }
      }
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    // UTF-8 encode.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no infinity/NaN; encode as null (callers that need infinite
    // bandwidths map them explicitly, see model/serialization.cpp).
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent >= 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                           (static_cast<std::size_t>(depth) + 1),
                                       ' ')
                  : "";
  const std::string pad_close =
      indent >= 0
          ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
          : "";
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    write_number(out, as_number());
  } else if (is_string()) {
    write_escaped(out, as_string());
  } else if (is_array()) {
    const Array& items = as_array();
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      out += pad;
      items[i].write(out, indent, depth + 1);
    }
    out += pad_close;
    out += ']';
  } else {
    const Object& fields = as_object();
    if (fields.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ',';
      out += pad;
      write_escaped(out, fields[i].first);
      out += indent >= 0 ? ": " : ":";
      fields[i].second.write(out, indent, depth + 1);
    }
    out += pad_close;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << value.dump(2) << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace tsce::util
