/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// All stochastic components of the library (workload generation, GENITOR
/// operators, Monte-Carlo replication) draw from tsce::util::Rng so that every
/// experiment is exactly reproducible from a single 64-bit seed.  The engine
/// is xoshiro256**, seeded through SplitMix64 per the authors'
/// recommendation; it is far faster than std::mt19937_64 and has no
/// observable statistical defects at the scale used here.

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace tsce::util {

/// SplitMix64 step; used for seeding and for deriving independent streams.
constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from \p seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(range));
  }

  /// Unbiased uniform value in [0, bound) via Lemire's rejection method.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability \p p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& choice(std::span<const T> items) noexcept {
    return items[bounded(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[bounded(i)]);
    }
  }

  /// Derives an independent child stream; used to give each Monte-Carlo run
  /// or worker thread its own generator without correlation.
  Rng spawn() noexcept {
    std::uint64_t s = (*this)();
    return Rng(split_mix64(s));
  }

  /// The \p index-th independent stream of \p seed.  Unlike spawn() this
  /// advances no generator, so parallel work items can derive their stream
  /// from their index alone and stay deterministic under any scheduling
  /// (the BatchEvaluator seeding contract).
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t index) noexcept {
    std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
    return Rng(split_mix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tsce::util
