/// \file thread_pool.hpp
/// Minimal fixed-size thread pool with a parallel_for convenience wrapper.
///
/// Used to spread independent Monte-Carlo replications (and, optionally,
/// GENITOR trial restarts) across cores.  Work items are type-erased
/// std::move_only_function-style tasks; results flow back through
/// std::future.  On a single-core host the pool degrades gracefully to one
/// worker with negligible overhead.
///
/// The pool keeps process-wide Stats (task count, peak queue depth, and —
/// when set_timing(true) — per-task queue-wait and run latency).  They live
/// here rather than in src/obs because util sits below obs in the layer
/// order; obs::MetricsRegistry::snapshot() folds them into its document.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tsce::util {

class ThreadPool {
 public:
  /// Process-wide tallies across every pool instance.  Counters are updated
  /// with relaxed atomics; wait/run latencies are only collected while
  /// set_timing(true) (timestamping every task costs two clock reads).
  struct Stats {
    std::atomic<std::uint64_t> tasks{0};            ///< tasks ever submitted
    std::atomic<std::uint64_t> max_queue_depth{0};  ///< peak queue length seen
    std::atomic<std::uint64_t> timed_tasks{0};      ///< tasks with latency data
    std::atomic<std::uint64_t> wait_ns_total{0};    ///< submit -> dequeue
    std::atomic<std::uint64_t> wait_ns_max{0};
    std::atomic<std::uint64_t> run_ns_total{0};     ///< dequeue -> completion

    void reset() noexcept {
      tasks.store(0, std::memory_order_relaxed);
      max_queue_depth.store(0, std::memory_order_relaxed);
      timed_tasks.store(0, std::memory_order_relaxed);
      wait_ns_total.store(0, std::memory_order_relaxed);
      wait_ns_max.store(0, std::memory_order_relaxed);
      run_ns_total.store(0, std::memory_order_relaxed);
    }
  };

  [[nodiscard]] static Stats& global_stats() noexcept;
  /// Enables per-task wait/run timing for pools created afterwards or tasks
  /// submitted afterwards (checked per submit).
  static void set_timing(bool enabled) noexcept;
  [[nodiscard]] static bool timing_enabled() noexcept;

  /// Creates \p num_threads workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Item item;
    item.fn = [task]() { (*task)(); };
    if (timing_enabled()) {
      item.timed = true;
      item.enqueued = std::chrono::steady_clock::now();
    }
    std::size_t depth;
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(item));
      depth = queue_.size();
    }
    note_submitted(depth);
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count), blocking until all complete.  Exceptions
  /// from work items are rethrown (first one wins).
  template <typename F>
  void parallel_for(std::size_t count, F&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(submit([&fn, i]() { fn(i); }));
    }
    drain(futures);
  }

  /// Runs fn(i) for i in [0, count) pulling indices from a shared atomic
  /// cursor with at most one task per worker — O(workers) futures instead of
  /// O(count), so barrier-stepped loops (the tempering engine's sweeps, the
  /// exact search's branch split) can call it repeatedly without flooding the
  /// queue.  fn must tolerate any index-to-worker schedule; blocks until all
  /// indices are done and rethrows the first work-item exception.
  template <typename F>
  void for_each_index(std::size_t count, F&& fn) {
    std::atomic<std::size_t> cursor{0};
    const std::size_t tasks = std::min(workers_.size(), count);
    std::vector<std::future<void>> futures;
    futures.reserve(tasks);
    for (std::size_t w = 0; w < tasks; ++w) {
      futures.push_back(submit([&fn, &cursor, count]() {
        for (std::size_t i = cursor.fetch_add(1); i < count;
             i = cursor.fetch_add(1)) {
          fn(i);
        }
      }));
    }
    drain(futures);
  }

 private:
  /// Waits on every future before rethrowing the first stored exception.
  /// Rethrowing from the first failed get() would abandon tasks that are
  /// still running against stack captures of the caller's frame
  /// (use-after-scope once the caller unwinds).
  static void drain(std::vector<std::future<void>>& futures) {
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  struct Item {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
    bool timed = false;
  };

  static void note_submitted(std::size_t queue_depth) noexcept;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Item> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tsce::util
