/// \file thread_pool.hpp
/// Minimal fixed-size thread pool with a parallel_for convenience wrapper.
///
/// Used to spread independent Monte-Carlo replications (and, optionally,
/// GENITOR trial restarts) across cores.  Work items are type-erased
/// std::move_only_function-style tasks; results flow back through
/// std::future.  On a single-core host the pool degrades gracefully to one
/// worker with negligible overhead.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tsce::util {

class ThreadPool {
 public:
  /// Creates \p num_threads workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count), blocking until all complete.  Exceptions
  /// from work items are rethrown (first one wins).
  template <typename F>
  void parallel_for(std::size_t count, F&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(submit([&fn, i]() { fn(i); }));
    }
    for (auto& f : futures) f.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tsce::util
