#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

namespace tsce::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (count_ < 2) return 0.0;
  return student_t_quantile_95(count_ - 1) * stddev() /
         std::sqrt(static_cast<double>(count_));
}

double student_t_quantile_95(std::size_t df) noexcept {
  // t_{0.975, df} for df = 1..30, then selected larger values.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.042 + (2.021 - 2.042) * static_cast<double>(df - 30) / 10.0;
  if (df <= 60) return 2.021 + (2.000 - 2.021) * static_cast<double>(df - 40) / 20.0;
  if (df <= 120) return 2.000 + (1.980 - 2.000) * static_cast<double>(df - 60) / 60.0;
  return 1.960;
}

std::string format_mean_ci(const RunningStats& s, int decimals) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f \xC2\xB1 %.*f", decimals, s.mean(),
                decimals, s.ci95_half_width());
  return buf;
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace tsce::util
