#include "util/thread_pool.hpp"

#include <algorithm>

namespace tsce::util {

namespace {

std::atomic<bool> g_timing{false};

/// Relaxed running-maximum update (safe against concurrent raisers).
void raise_max(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ThreadPool::Stats& ThreadPool::global_stats() noexcept {
  static Stats stats;
  return stats;
}

void ThreadPool::set_timing(bool enabled) noexcept {
  g_timing.store(enabled, std::memory_order_relaxed);
}

bool ThreadPool::timing_enabled() noexcept {
  return g_timing.load(std::memory_order_relaxed);
}

void ThreadPool::note_submitted(std::size_t queue_depth) noexcept {
  Stats& stats = global_stats();
  stats.tasks.fetch_add(1, std::memory_order_relaxed);
  raise_max(stats.max_queue_depth, queue_depth);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (item.timed) {
      Stats& stats = global_stats();
      const auto start = std::chrono::steady_clock::now();
      const auto wait_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                               item.enqueued)
              .count());
      item.fn();
      const auto run_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      stats.timed_tasks.fetch_add(1, std::memory_order_relaxed);
      stats.wait_ns_total.fetch_add(wait_ns, std::memory_order_relaxed);
      raise_max(stats.wait_ns_max, wait_ns);
      stats.run_ns_total.fetch_add(run_ns, std::memory_order_relaxed);
    } else {
      item.fn();
    }
  }
}

}  // namespace tsce::util
