#include "util/thread_pool.hpp"

#include <algorithm>

namespace tsce::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tsce::util
