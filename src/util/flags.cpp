#include "util/flags.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace tsce::util {
namespace {

std::string repr_of(std::int64_t v) { return std::to_string(v); }
std::string repr_of(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
std::string repr_of(bool v) { return v ? "true" : "false"; }

}  // namespace

void Flags::add(std::string_view name, std::int64_t* target, std::string_view help) {
  entries_.push_back({std::string(name), Type::kInt, target, std::string(help),
                      repr_of(*target)});
}
void Flags::add(std::string_view name, double* target, std::string_view help) {
  entries_.push_back({std::string(name), Type::kDouble, target, std::string(help),
                      repr_of(*target)});
}
void Flags::add(std::string_view name, bool* target, std::string_view help) {
  entries_.push_back({std::string(name), Type::kBool, target, std::string(help),
                      repr_of(*target)});
}
void Flags::add(std::string_view name, std::string* target, std::string_view help) {
  entries_.push_back(
      {std::string(name), Type::kString, target, std::string(help), *target});
}

Flags::Entry* Flags::find(std::string_view name) {
  for (auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool Flags::assign(Entry& entry, std::string_view value) {
  switch (entry.type) {
    case Type::kInt: {
      auto* t = static_cast<std::int64_t*>(entry.target);
      auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), *t);
      return ec == std::errc{} && ptr == value.data() + value.size();
    }
    case Type::kDouble: {
      // from_chars for double is available in libstdc++ 11+; strtod keeps us
      // portable and the inputs are trusted CLI text.
      char* end = nullptr;
      const std::string copy(value);
      *static_cast<double*>(entry.target) = std::strtod(copy.c_str(), &end);
      return end != nullptr && *end == '\0' && !copy.empty();
    }
    case Type::kBool: {
      auto* t = static_cast<bool*>(entry.target);
      if (value == "true" || value == "1") {
        *t = true;
      } else if (value == "false" || value == "0") {
        *t = false;
      } else {
        return false;
      }
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(entry.target) = std::string(value);
      return true;
  }
  return false;
}

void Flags::print_help() const {
  std::printf("%s\n\nFlags:\n", doc_.c_str());
  for (const auto& e : entries_) {
    std::printf("  --%-24s %s (default: %s)\n", e.name.c_str(), e.help.c_str(),
                e.default_repr.c_str());
  }
  std::printf("  --%-24s print this help\n", "help");
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      print_help();
      return false;
    }
    std::string_view name = arg;
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Entry* entry = find(name);
    bool negated = false;
    if (entry == nullptr && name.starts_with("no-")) {
      entry = find(name.substr(3));
      negated = entry != nullptr && entry->type == Type::kBool;
      if (!negated) entry = nullptr;
    }
    if (entry == nullptr) {
      std::fprintf(stderr, "error: unknown flag --%.*s (see --help)\n",
                   static_cast<int>(name.size()), name.data());
      return false;
    }
    if (negated) {
      *static_cast<bool*>(entry->target) = false;
      continue;
    }
    if (!has_value) {
      if (entry->type == Type::kBool) {
        *static_cast<bool*>(entry->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: flag --%s expects a value\n", entry->name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!assign(*entry, value)) {
      std::fprintf(stderr, "error: bad value '%.*s' for flag --%s\n",
                   static_cast<int>(value.size()), value.data(), entry->name.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace tsce::util
