/// \file flags.hpp
/// Tiny declarative command-line flag parser for bench harnesses and examples.
///
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name`.  Unknown flags are an error so typos surface immediately;
/// `--help` prints registered flags with defaults and descriptions.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsce::util {

class Flags {
 public:
  /// \p program_doc is printed at the top of --help output.
  explicit Flags(std::string program_doc) : doc_(std::move(program_doc)) {}

  /// Registers a flag bound to \p target (which holds the default value).
  void add(std::string_view name, std::int64_t* target, std::string_view help);
  void add(std::string_view name, double* target, std::string_view help);
  void add(std::string_view name, bool* target, std::string_view help);
  void add(std::string_view name, std::string* target, std::string_view help);

  /// Parses argv.  Returns false (after printing help or an error to
  /// stderr/stdout) when the caller should exit.
  [[nodiscard]] bool parse(int argc, char** argv);

  /// Positional arguments remaining after flag parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Entry {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  void print_help() const;
  Entry* find(std::string_view name);
  static bool assign(Entry& entry, std::string_view value);

  std::string doc_;
  std::vector<Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace tsce::util
