/// \file table.hpp
/// Plain-text table rendering for benchmark harnesses.
///
/// Every bench binary reports the paper's rows/series through this printer so
/// output is uniform and machine-greppable (a CSV mirror can be emitted
/// alongside the pretty table).

#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace tsce::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric cells.
  static std::string num(double v, int decimals = 2);

  /// Renders an aligned ASCII table to \p out.
  void print(std::FILE* out = stdout) const;

  /// Renders comma-separated values (header + rows) to \p out.
  void print_csv(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsce::util
