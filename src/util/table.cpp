#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace tsce::util {

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

namespace {
// Display width ignoring UTF-8 continuation bytes (the ± sign in confidence
// intervals is two bytes but one column).
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;
  }
  return w;
}
}  // namespace

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = display_width(headers_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("|", out);
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - display_width(row[c]);
      std::fprintf(out, " %s%*s |", row[c].c_str(), static_cast<int>(pad), "");
    }
    std::fputs("\n", out);
  };
  auto print_rule = [&]() {
    std::fputs("+", out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputs("\n", out);
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", row[c].c_str(), c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tsce::util
