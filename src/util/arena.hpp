/// \file arena.hpp
/// Monotonic bump arena with typed, offset-based views and a memcpy snapshot
/// protocol — the flat-memory substrate of the evaluation core (DESIGN.md
/// §12).
///
/// Everything placed in an Arena is addressed by byte offset, never by
/// pointer, so the whole arena is one relocatable block: growing the backing
/// buffer, snapshotting the used prefix, restoring a snapshot, and cloning
/// into another arena are all plain memcpys that preserve every internal
/// reference.  Only trivially copyable element types are allowed (enforced at
/// compile time), which is what makes the byte-level snapshot exact: a
/// restored arena is bit-identical to the arena at snapshot time.
///
/// The arena is monotonic: alloc() only moves the tip forward.  Rewinding is
/// either structural (checkpoint()/rewind() move the tip back, cheap and
/// byte-exact for tip-only usage) or total (snapshot_into()/restore_from()
/// replay the full used prefix).  There is no per-object free; dead regions
/// left behind by grow() are reclaimed only when the owner rebuilds the
/// arena.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace tsce::util {

/// Relocatable typed view: a (byte offset, element count) pair that must be
/// resolved against its arena via Arena::view().  Valid across arena growth,
/// snapshot/restore, and cloning — unlike a pointer or std::span.
template <typename T>
struct ArenaSpan {
  static_assert(std::is_trivially_copyable_v<T>,
                "arena elements must be trivially copyable (memcpy snapshot)");
  std::uint32_t offset = 0;  ///< byte offset of the first element
  std::uint32_t count = 0;   ///< element count
};

/// Reusable byte-image of an arena's used prefix.  snapshot_into() overwrites
/// the previous image in place, so steady-state snapshotting never allocates
/// once the buffer has grown to the arena's working size.
struct ArenaSnapshot {
  std::vector<std::byte> bytes;
};

class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t initial_capacity) { reserve_bytes(initial_capacity); }

  /// Deep copies reuse the destination buffer when it is large enough, so
  /// clone-into-existing-arena is allocation-free in steady state.
  Arena(const Arena& other) { *this = other; }
  Arena& operator=(const Arena& other) {
    if (this == &other) return *this;
    reserve_bytes(other.used_);
    used_ = other.used_;
    if (used_ != 0) std::memcpy(bytes_.get(), other.bytes_.get(), used_);
    return *this;
  }
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Allocates \p count elements of T at the tip (8-byte aligned,
  /// zero-initialized) and returns the relocatable view.
  template <typename T>
  [[nodiscard]] ArenaSpan<T> alloc(std::size_t count) {
    const std::size_t offset = align_up(used_);
    const std::size_t bytes = count * sizeof(T);
    reserve_bytes(offset + bytes);
    if (bytes != 0) std::memset(bytes_.get() + offset, 0, bytes);
    used_ = offset + bytes;
    return {static_cast<std::uint32_t>(offset), static_cast<std::uint32_t>(count)};
  }

  /// Grows \p span to \p new_count elements.  When the span ends exactly at
  /// the tip it is extended in place; otherwise a fresh region is allocated
  /// at the tip and the old elements are copied over (the old region becomes
  /// arena garbage).  Either way existing element values are preserved and
  /// new elements are zero-initialized.
  template <typename T>
  [[nodiscard]] ArenaSpan<T> grow(ArenaSpan<T> span, std::size_t new_count) {
    const std::size_t old_bytes = span.count * sizeof(T);
    const std::size_t new_bytes = new_count * sizeof(T);
    if (span.offset + old_bytes == used_) {  // tip slab: extend in place
      reserve_bytes(span.offset + new_bytes);
      std::memset(bytes_.get() + span.offset + old_bytes, 0,
                  new_bytes - old_bytes);
      used_ = span.offset + new_bytes;
      return {span.offset, static_cast<std::uint32_t>(new_count)};
    }
    const ArenaSpan<T> moved = alloc<T>(new_count);
    if (old_bytes != 0) {
      std::memcpy(bytes_.get() + moved.offset, bytes_.get() + span.offset,
                  old_bytes);
    }
    return moved;
  }

  template <typename T>
  [[nodiscard]] std::span<T> view(ArenaSpan<T> span) noexcept {
    return {reinterpret_cast<T*>(bytes_.get() + span.offset), span.count};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> view(ArenaSpan<T> span) const noexcept {
    return {reinterpret_cast<const T*>(bytes_.get() + span.offset), span.count};
  }

  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Structural rewind: marks the current tip so later allocations can be
  /// abandoned wholesale.  Only sound when everything past the checkpoint is
  /// tip-only (no live spans point beyond it).
  struct Checkpoint {
    std::size_t used = 0;
  };
  [[nodiscard]] Checkpoint checkpoint() const noexcept { return {used_}; }
  void rewind(Checkpoint cp) noexcept { used_ = cp.used; }

  /// Copies the used prefix into \p out (one memcpy; buffer reused).
  void snapshot_into(ArenaSnapshot& out) const {
    out.bytes.resize(used_);
    if (used_ != 0) std::memcpy(out.bytes.data(), bytes_.get(), used_);
  }
  /// Restores a snapshot taken from this arena or a same-layout peer: after
  /// the call the used prefix is bit-identical to the snapshot (one memcpy).
  void restore_from(const ArenaSnapshot& snap) {
    reserve_bytes(snap.bytes.size());
    used_ = snap.bytes.size();
    if (used_ != 0) std::memcpy(bytes_.get(), snap.bytes.data(), used_);
  }

 private:
  static constexpr std::size_t align_up(std::size_t n) noexcept {
    return (n + 7u) & ~std::size_t{7};
  }

  void reserve_bytes(std::size_t needed) {
    if (needed <= capacity_) return;
    std::size_t next = capacity_ == 0 ? 256 : capacity_;
    while (next < needed) next *= 2;
    std::unique_ptr<std::byte[]> grown(new std::byte[next]);
    if (used_ != 0) std::memcpy(grown.get(), bytes_.get(), used_);
    bytes_ = std::move(grown);
    capacity_ = next;
  }

  std::unique_ptr<std::byte[]> bytes_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace tsce::util
