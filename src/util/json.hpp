/// \file json.hpp
/// Minimal self-contained JSON value, parser, and writer.
///
/// Implemented in-repo (no third-party dependency) for model/allocation
/// persistence.  Supports the full JSON grammar: null, booleans, numbers
/// (doubles), strings with escape sequences including \uXXXX, arrays, and
/// objects.  Object key order is preserved on round-trip.

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace tsce::util {

/// Error with the input offset where parsing failed.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  using Array = std::vector<Json>;
  /// Keys kept in insertion order (vector of pairs, not std::map).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] double as_number() const { return get<double>("number"); }
  [[nodiscard]] const std::string& as_string() const { return get<std::string>("string"); }
  [[nodiscard]] const Array& as_array() const { return get<Array>("array"); }
  [[nodiscard]] Array& as_array() { return getm<Array>("array"); }
  [[nodiscard]] const Object& as_object() const { return get<Object>("object"); }
  [[nodiscard]] Object& as_object() { return getm<Object>("object"); }

  /// Object field lookup; throws std::out_of_range when missing.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const noexcept;

  /// Appends/sets an object field (no duplicate-key check; use once per key).
  void set(std::string key, Json value);
  /// Appends an array element.
  void push_back(Json value);

  /// Parses a complete JSON document (trailing whitespace allowed).
  [[nodiscard]] static Json parse(std::string_view text);

  /// Serializes; \p indent < 0 is compact, otherwise pretty-printed with that
  /// many spaces per level.  Numbers round-trip exactly (%.17g).
  [[nodiscard]] std::string dump(int indent = -1) const;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw std::runtime_error(std::string("Json: value is not a ") + name);
  }
  template <typename T>
  T& getm(const char* name) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw std::runtime_error(std::string("Json: value is not a ") + name);
  }

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Reads and parses a JSON file; throws std::runtime_error on I/O failure.
[[nodiscard]] Json read_json_file(const std::string& path);
/// Writes pretty-printed JSON to a file; throws on I/O failure.
void write_json_file(const std::string& path, const Json& value);

}  // namespace tsce::util
