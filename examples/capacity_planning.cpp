/// \file capacity_planning.cpp
/// Capacity-planning study with the library: how much workload can a fixed
/// machine suite take before strings start being rejected, and how does the
/// remaining slack shrink on the way there?
///
/// The example sweeps the offered load (number of strings) on a fixed
/// 6-machine suite, allocating each load level with MWF and with the Seeded
/// PSG, and reports deployed worth, deployed fraction, and system slackness.
/// The knee where the deployed fraction drops below 1.0 is the capacity of
/// the suite for this workload mix.

#include <cstdio>

#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t seed = 31;
  std::int64_t max_strings = 36;
  std::int64_t step = 6;
  util::Flags flags(
      "capacity_planning — sweep offered load on a fixed machine suite and "
      "locate the saturation knee");
  flags.add("machines", &machines, "machine count M");
  flags.add("seed", &seed, "RNG seed");
  flags.add("max-strings", &max_strings, "largest string count probed");
  flags.add("step", &step, "string count step");
  if (!flags.parse(argc, argv)) return 0;

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 40;
  psg_options.ga.max_iterations = 200;
  psg_options.ga.stagnation_limit = 100;
  psg_options.trials = 1;

  std::printf("== Capacity planning on %lld machines ==\n\n",
              static_cast<long long>(machines));
  util::Table table({"strings offered", "MWF worth", "MWF deployed", "MWF slack",
                     "PSG worth", "PSG deployed", "PSG slack"});
  for (std::int64_t q = step; q <= max_strings; q += step) {
    auto config =
        workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
    config.num_machines = static_cast<std::size_t>(machines);
    config.num_strings = static_cast<std::size_t>(q);
    util::Rng rng(static_cast<std::uint64_t>(seed));  // same seed: nested loads
    const model::SystemModel m = workload::generate(config, rng);

    util::Rng r1(1);
    util::Rng r2(2);
    const auto mwf = core::MostWorthFirst{}.allocate(m, r1);
    const auto psg = core::SeededPsg(psg_options).allocate(m, r2);
    auto frac = [&](const core::AllocatorResult& r) {
      return static_cast<double>(r.allocation.num_deployed()) /
             static_cast<double>(m.num_strings());
    };
    table.add_row({std::to_string(q), std::to_string(mwf.fitness.total_worth),
                   util::Table::num(frac(mwf), 2),
                   util::Table::num(mwf.fitness.slackness, 3),
                   std::to_string(psg.fitness.total_worth),
                   util::Table::num(frac(psg), 2),
                   util::Table::num(psg.fitness.slackness, 3)});
  }
  table.print();
  std::printf("\nReading: deployed fraction < 1.00 marks the saturation knee; "
              "slack approaching 0 warns that even deployed strings have no "
              "headroom for workload growth.\n");
  return 0;
}
