/// \file shipboard_scenario.cpp
/// A hand-modeled Total Ship Computing Environment in the spirit of the
/// paper's motivating domain: sensor-to-decision application strings (radar
/// tracking, sonar classification, self-defense, navigation, logistics) on a
/// small heterogeneous machine suite.
///
/// The example compares all paper heuristics on this fixed instance, prints
/// the winning mapping, and validates it in the discrete-event simulator.

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/feasibility.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "model/system_model.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

/// Six heterogeneous machines: two fast combat-system processors, two
/// mid-range signal processors, two slow utility nodes.  Per-machine nominal
/// times scale with a speed factor; utilization requirements stay put.
tsce::model::SystemModel build_ship() {
  using namespace tsce::model;
  constexpr int kMachines = 6;
  const double speed[kMachines] = {1.0, 1.0, 1.5, 1.5, 2.5, 2.5};
  SystemModelBuilder b(kMachines);
  b.uniform_bandwidth(6.0);
  b.machine_name(0, "cs-proc-0");
  b.machine_name(1, "cs-proc-1");
  b.machine_name(2, "sig-proc-0");
  b.machine_name(3, "sig-proc-1");
  b.machine_name(4, "util-node-0");
  b.machine_name(5, "util-node-1");

  auto scaled = [&](double base) {
    std::vector<double> t(kMachines);
    for (int j = 0; j < kMachines; ++j) t[j] = base * speed[j];
    return t;
  };
  auto flat = [&](double u) { return std::vector<double>(kMachines, u); };

  // Radar track processing: high worth, tight latency.
  b.begin_string(2.0, 6.0, Worth::kHigh, "radar-track");
  b.add_app(scaled(0.6), flat(0.8), 120.0, "pulse-compress");
  b.add_app(scaled(0.8), flat(0.9), 60.0, "track-filter");
  b.add_app(scaled(0.4), flat(0.5), 0.0, "track-report");

  // Sonar classification: high worth, longer period.
  b.begin_string(5.0, 15.0, Worth::kHigh, "sonar-classify");
  b.add_app(scaled(1.5), flat(0.9), 90.0, "beamform");
  b.add_app(scaled(1.2), flat(0.7), 45.0, "feature-extract");
  b.add_app(scaled(0.9), flat(0.6), 0.0, "classify");

  // Self-defense engagement support: high worth, very tight.
  b.begin_string(1.5, 4.0, Worth::kHigh, "self-defense");
  b.add_app(scaled(0.5), flat(0.9), 80.0, "threat-eval");
  b.add_app(scaled(0.4), flat(0.8), 0.0, "weapon-assign");

  // Navigation fusion: medium worth.
  b.begin_string(4.0, 14.0, Worth::kMedium, "nav-fusion");
  b.add_app(scaled(1.0), flat(0.5), 50.0, "gps-ins-blend");
  b.add_app(scaled(0.8), flat(0.4), 25.0, "chart-update");
  b.add_app(scaled(0.5), flat(0.3), 0.0, "helm-display");

  // Environmental picture: medium worth.
  b.begin_string(8.0, 30.0, Worth::kMedium, "env-picture");
  b.add_app(scaled(2.0), flat(0.6), 70.0, "met-ingest");
  b.add_app(scaled(1.5), flat(0.5), 0.0, "picture-compose");

  // Logistics and condition monitoring: low worth, relaxed.
  b.begin_string(10.0, 60.0, Worth::kLow, "condition-monitor");
  b.add_app(scaled(2.5), flat(0.4), 40.0, "sensor-sweep");
  b.add_app(scaled(2.0), flat(0.3), 20.0, "trend-analysis");
  b.add_app(scaled(1.0), flat(0.2), 0.0, "maintenance-log");

  b.begin_string(12.0, 80.0, Worth::kLow, "logistics-sync");
  b.add_app(scaled(3.0), flat(0.3), 30.0, "inventory-scan");
  b.add_app(scaled(2.0), flat(0.2), 0.0, "shore-report");

  return b.build();
}

}  // namespace

int main() {
  using namespace tsce;
  const model::SystemModel ship = build_ship();
  std::printf("== Shipboard scenario: %zu machines, %zu strings, worth %d "
              "available ==\n\n",
              ship.num_machines(), ship.num_strings(),
              ship.total_worth_available());

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 50;
  psg_options.ga.max_iterations = 300;
  psg_options.ga.stagnation_limit = 150;
  psg_options.trials = 2;

  std::vector<core::AllocatorPtr> allocators;
  allocators.push_back(std::make_unique<core::MostWorthFirst>());
  allocators.push_back(std::make_unique<core::TightestFirst>());
  allocators.push_back(std::make_unique<core::SeededPsg>(psg_options));

  util::Table table({"heuristic", "worth deployed", "slackness", "feasible"});
  core::AllocatorResult best;
  std::string best_name;
  for (const auto& allocator : allocators) {
    util::Rng rng(2005);
    auto result = allocator->allocate(ship, rng);
    const bool feasible =
        analysis::check_feasibility(ship, result.allocation).feasible();
    table.add_row({allocator->name(), std::to_string(result.fitness.total_worth),
                   util::Table::num(result.fitness.slackness, 3),
                   feasible ? "yes" : "no"});
    if (best_name.empty() || best.fitness < result.fitness) {
      best = std::move(result);
      best_name = allocator->name();
    }
  }
  table.print();

  std::printf("\nBest allocation (%s):\n%s\n", best_name.c_str(),
              best.allocation.to_string(ship).c_str());

  // Validate the winner end-to-end in the discrete-event simulator.
  const auto sim = sim::simulate(ship, best.allocation, {.horizon_s = 120.0});
  util::Table sim_table(
      {"string", "datasets", "mean latency [s]", "Lmax [s]", "violations"});
  for (std::size_t k = 0; k < ship.num_strings(); ++k) {
    if (!best.allocation.deployed(static_cast<model::StringId>(k))) continue;
    sim_table.add_row({ship.strings[k].name,
                       std::to_string(sim.strings[k].datasets_completed),
                       util::Table::num(sim.strings[k].latency_s.mean(), 2),
                       util::Table::num(ship.strings[k].max_latency_s, 2),
                       std::to_string(sim.strings[k].latency_violations)});
  }
  std::printf("Simulated 120 s of operation:\n");
  sim_table.print();
  std::printf("\nTotal QoS violations in simulation: %zu\n",
              sim.total_violations());
  return 0;
}
