/// \file quickstart.cpp
/// Smallest end-to-end tour of the public API:
///   1. describe a system (machines, routes, application strings),
///   2. run an allocation heuristic,
///   3. inspect the mapping, its feasibility, and the performance metric.

#include <cstdio>

#include "analysis/feasibility.hpp"
#include "analysis/metrics.hpp"
#include "core/ordered.hpp"
#include "model/system_model.hpp"

int main() {
  using namespace tsce;

  // 1. A 3-machine suite with 5 Mb/s virtual routes and two periodic strings.
  //    Times are seconds, outputs Kbytes, utilizations CPU fractions.
  const model::SystemModel system =
      model::SystemModelBuilder(3)
          .uniform_bandwidth(5.0)
          .machine_name(0, "proc-alpha")
          .machine_name(1, "proc-bravo")
          .machine_name(2, "proc-charlie")
          .begin_string(/*period=*/8.0, /*max_latency=*/20.0,
                        model::Worth::kHigh, "radar-track")
          .add_app(2.0, 0.6, 80.0, "filter")
          .add_app(3.0, 0.8, 40.0, "associate")
          .add_app(1.5, 0.5, 0.0, "display")
          .begin_string(/*period=*/12.0, /*max_latency=*/25.0,
                        model::Worth::kMedium, "sonar-classify")
          .add_app(4.0, 0.7, 60.0, "beamform")
          .add_app(2.5, 0.4, 0.0, "classify")
          .build();

  std::printf("System: %zu machines, %zu strings, %zu applications, "
              "total worth available %d\n\n",
              system.num_machines(), system.num_strings(), system.num_apps(),
              system.total_worth_available());

  // 2. Allocate with Most Worth First (a deterministic one-pass heuristic).
  util::Rng rng(42);
  const core::AllocatorResult result = core::MostWorthFirst{}.allocate(system, rng);

  // 3. Inspect the result.
  std::printf("%s", result.allocation.to_string(system).c_str());
  const auto report = analysis::check_feasibility(system, result.allocation);
  std::printf("\nfeasible: %s\n", report.feasible() ? "yes" : "no");
  std::printf("total worth deployed: %d\n", result.fitness.total_worth);
  std::printf("system slackness: %.3f (capacity headroom for workload "
              "growth)\n",
              result.fitness.slackness);
  return report.feasible() ? 0 : 1;
}
