/// \file dag_mission.cpp
/// A fork/join mission thread modeled as a DAG string: a surveillance picture
/// fuses radar and sonar branches that process the same data set in parallel
/// before a combined classification stage — exactly the structure the paper's
/// footnote 2 anticipates for the final ARMS program.
///
///       ingest ──> radar-filter ──> radar-track ──┐
///          │                                      ├──> fuse ──> display
///          └─────> sonar-filter ──> sonar-class ──┘
///
/// The example maps the DAG with the generalized IMR, verifies the two-stage
/// feasibility, and contrasts the critical-path latency with the chain-sum
/// bound a purely linear model would have to assume.

#include <cstdio>

#include "dag/allocator.hpp"
#include "dag/model.hpp"
#include "util/table.hpp"

int main() {
  using namespace tsce;
  dag::DagSystemModel system;
  system.network = model::Network(4);
  for (model::MachineId j1 = 0; j1 < 4; ++j1) {
    for (model::MachineId j2 = 0; j2 < 4; ++j2) {
      if (j1 != j2) system.network.set_bandwidth_mbps(j1, j2, 6.0);
    }
  }

  dag::DagString mission;
  mission.name = "surveillance-picture";
  mission.period_s = 5.0;
  mission.max_latency_s = 14.0;
  mission.worth = model::Worth::kHigh;
  const char* names[] = {"ingest",      "radar-filter", "radar-track",
                         "sonar-filter", "sonar-class",  "fuse",
                         "display"};
  const double times[] = {1.0, 2.0, 1.5, 2.5, 2.0, 1.2, 0.6};
  const double utils[] = {0.5, 0.8, 0.7, 0.8, 0.6, 0.5, 0.3};
  for (int i = 0; i < 7; ++i) {
    model::Application a;
    a.name = names[i];
    a.nominal_time_s.assign(4, times[i]);
    a.nominal_util.assign(4, utils[i]);
    mission.apps.push_back(std::move(a));
  }
  mission.edges = {
      {0, 1, 120.0},  // ingest -> radar-filter
      {0, 3, 150.0},  // ingest -> sonar-filter
      {1, 2, 60.0},   // radar-filter -> radar-track
      {3, 4, 70.0},   // sonar-filter -> sonar-class
      {2, 5, 30.0},   // radar-track -> fuse
      {4, 5, 30.0},   // sonar-class -> fuse
      {5, 6, 20.0},   // fuse -> display
  };
  system.strings.push_back(mission);

  // A background navigation chain competes for the same machines.
  dag::DagString nav;
  nav.name = "nav-chain";
  nav.period_s = 8.0;
  nav.max_latency_s = 40.0;
  nav.worth = model::Worth::kMedium;
  for (int i = 0; i < 3; ++i) {
    model::Application a;
    a.name = "nav-" + std::to_string(i);
    a.nominal_time_s.assign(4, 2.0);
    a.nominal_util.assign(4, 0.4);
    nav.apps.push_back(std::move(a));
  }
  nav.edges = {{0, 1, 40.0}, {1, 2, 40.0}};
  system.strings.push_back(nav);

  const auto problems = system.validate();
  if (!problems.empty()) {
    std::printf("model invalid: %s\n", problems.front().c_str());
    return 1;
  }

  const auto result = dag::allocate_most_worth_first(system);
  std::printf("== DAG mission allocation ==\n");
  std::printf("worth deployed: %d of %d; slackness %.3f\n\n",
              result.fitness.total_worth, system.total_worth_available(),
              result.fitness.slackness);

  util::Table table({"application", "machine"});
  for (std::size_t i = 0; i < system.strings[0].size(); ++i) {
    table.add_row({system.strings[0].apps[i].name,
                   "m" + std::to_string(result.allocation.machine_of(
                             0, static_cast<model::AppIndex>(i)))});
  }
  table.print();

  const auto est = dag::estimate_all(system, result.allocation);
  double chain_sum = 0.0;
  for (const double c : est.comp[0]) chain_sum += c;
  for (const double t : est.tran[0]) chain_sum += t;
  const double critical = est.latency(system, 0);
  std::printf("\nmission latency: critical path %.2f s (chain-sum bound would "
              "be %.2f s) against Lmax = %.2f s\n",
              critical, chain_sum, system.strings[0].max_latency_s);
  const auto report = dag::check_feasibility(system, result.allocation);
  std::printf("two-stage feasibility: %s\n", report.feasible() ? "PASS" : "FAIL");
  return report.feasible() ? 0 : 1;
}
