/// \file tsce_cli.cpp
/// The "interactive software application" of §8: a command-line front end
/// that generates a workload (scenario, machine count, string count, max
/// applications per string), runs a chosen heuristic, and reports the
/// allocation, metrics, optional LP upper bound, and an optional simulation.
///
///   tsce_cli --scenario=1 --machines=6 --strings=20 --heuristic=seeded-psg
///   tsce_cli --scenario=3 --heuristic=mwf --ub --simulate

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/feasibility.hpp"
#include "core/baselines.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "lp/upper_bound.hpp"
#include "model/serialization.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

tsce::core::AllocatorPtr make_allocator(const std::string& name,
                                        const tsce::core::PsgOptions& psg) {
  using namespace tsce::core;
  if (name == "mwf") return std::make_unique<MostWorthFirst>();
  if (name == "tf") return std::make_unique<TightestFirst>();
  if (name == "psg") return std::make_unique<Psg>(psg);
  if (name == "seeded-psg") return std::make_unique<SeededPsg>(psg);
  if (name == "random") return std::make_unique<RandomOrder>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t scenario = 1;
  std::int64_t machines = 6;
  std::int64_t strings = 20;
  std::int64_t max_apps = 10;
  std::int64_t seed = 1;
  std::string heuristic = "seeded-psg";
  bool with_ub = false;
  bool with_sim = false;
  bool print_mapping = true;
  std::int64_t psg_iterations = 300;
  std::string load_model_path;
  std::string save_model_path;
  std::string save_allocation_path;
  util::Flags flags(
      "tsce_cli — generate a TSCE workload, allocate it, and report the "
      "metrics (the paper's interactive simulation application, §8)");
  flags.add("scenario", &scenario, "workload scenario 1|2|3 (Table 1)");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("max-apps", &max_apps, "max applications per string");
  flags.add("seed", &seed, "RNG seed");
  flags.add("heuristic", &heuristic, "mwf|tf|psg|seeded-psg|random");
  flags.add("ub", &with_ub, "also compute the LP upper bound");
  flags.add("simulate", &with_sim, "validate the allocation in the simulator");
  flags.add("mapping", &print_mapping, "print the full mapping");
  flags.add("psg-iterations", &psg_iterations, "PSG iteration budget");
  flags.add("load-model", &load_model_path,
            "load the system model from this JSON file instead of generating");
  flags.add("save-model", &save_model_path,
            "write the (generated or loaded) system model to this JSON file");
  flags.add("save-allocation", &save_allocation_path,
            "write the resulting allocation to this JSON file");
  if (!flags.parse(argc, argv)) return 0;
  if (scenario < 1 || scenario > 3) {
    std::fprintf(stderr, "error: --scenario must be 1, 2 or 3\n");
    return 1;
  }

  model::SystemModel m;
  if (!load_model_path.empty()) {
    try {
      m = model::load_system_model(load_model_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    auto config = workload::GeneratorConfig::for_scenario(
        static_cast<workload::Scenario>(scenario));
    config.num_machines = static_cast<std::size_t>(machines);
    config.num_strings = static_cast<std::size_t>(strings);
    config.max_apps_per_string = static_cast<std::size_t>(max_apps);
    util::Rng rng(static_cast<std::uint64_t>(seed));
    m = workload::generate(config, rng);
  }
  if (!save_model_path.empty()) {
    model::save_system_model(save_model_path, m);
    std::printf("model written to %s\n", save_model_path.c_str());
  }

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 60;
  psg_options.ga.max_iterations = static_cast<std::size_t>(psg_iterations);
  psg_options.ga.stagnation_limit = static_cast<std::size_t>(psg_iterations / 2);
  psg_options.trials = 2;
  const auto allocator = make_allocator(heuristic, psg_options);
  if (!allocator) {
    std::fprintf(stderr, "error: unknown heuristic '%s'\n", heuristic.c_str());
    return 1;
  }

  std::printf("scenario %lld: M=%zu machines, Q=%zu strings, %zu apps, worth "
              "available %d\n",
              static_cast<long long>(scenario), m.num_machines(), m.num_strings(),
              m.num_apps(), m.total_worth_available());
  util::Rng search_rng(static_cast<std::uint64_t>(seed) + 1);
  const auto result = allocator->allocate(m, search_rng);
  std::printf("heuristic %s: worth %d of %d deployed (%zu/%zu strings), "
              "slackness %.3f\n",
              allocator->name().c_str(), result.fitness.total_worth,
              m.total_worth_available(), result.allocation.num_deployed(),
              m.num_strings(), result.fitness.slackness);
  const auto report = analysis::check_feasibility(m, result.allocation);
  std::printf("two-stage feasibility: %s\n", report.feasible() ? "PASS" : "FAIL");
  for (const auto& violation : report.violations) {
    std::printf("  %s\n", violation.to_string().c_str());
  }
  if (print_mapping) {
    std::printf("\n%s", result.allocation.to_string(m).c_str());
  }
  if (!save_allocation_path.empty()) {
    model::save_allocation(save_allocation_path, result.allocation);
    std::printf("allocation written to %s\n", save_allocation_path.c_str());
  }

  if (with_ub) {
    const bool complete = scenario == 3;
    const auto ub = complete ? lp::upper_bound_slackness(m) : lp::upper_bound_worth(m);
    if (ub.status == lp::SolveStatus::kOptimal) {
      std::printf("\nLP upper bound (%s): %.2f  [LP: %zu rows, %zu cols, %zu "
                  "iterations]\n",
                  complete ? "slackness" : "total worth", ub.value, ub.lp_rows,
                  ub.lp_cols, ub.iterations);
      // Bottleneck analysis from the shadow prices.
      double best_price = 0.0;
      std::string bottleneck = "none (no binding capacity)";
      for (std::size_t j = 0; j < ub.machine_shadow_price.size(); ++j) {
        if (ub.machine_shadow_price[j] > best_price) {
          best_price = ub.machine_shadow_price[j];
          bottleneck = "machine m" + std::to_string(j);
        }
      }
      const std::size_t mm = ub.machine_shadow_price.size();
      for (std::size_t j1 = 0; j1 < mm; ++j1) {
        for (std::size_t j2 = 0; j2 < mm; ++j2) {
          if (ub.route_shadow_price[j1 * mm + j2] > best_price) {
            best_price = ub.route_shadow_price[j1 * mm + j2];
            bottleneck =
                "route m" + std::to_string(j1) + "->m" + std::to_string(j2);
          }
        }
      }
      std::printf("bottleneck resource: %s (shadow price %.3f per capacity "
                  "unit)\n",
                  bottleneck.c_str(), best_price);
    } else {
      std::printf("\nLP upper bound: %s\n", lp::to_string(ub.status));
    }
  }

  if (with_sim) {
    const auto sim = sim::simulate(m, result.allocation, {.horizon_s = 0.0});
    std::printf("\nsimulated %.0f s: %zu QoS violations across %zu deployed "
                "strings\n",
                sim.simulated_s, sim.total_violations(),
                result.allocation.num_deployed());
  }
  return 0;
}
