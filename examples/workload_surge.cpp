/// \file workload_surge.cpp
/// Operating through a workload surge: the scenario the paper's robustness
/// story is about (§1).  A complete allocation is computed once (offline
/// planning), then the input workload grows at runtime — more radar
/// contacts, bigger sensor frames — without any reallocation.  The
/// discrete-event simulator shows when QoS first degrades, and how that
/// point relates to the analytic system slackness.

#include <cstdio>

#include "core/psg.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t strings = 8;
  std::int64_t seed = 47;
  double max_surge = 3.0;
  double step = 0.25;
  util::Flags flags(
      "workload_surge — fixed allocation under growing input workload; when "
      "do QoS violations start, and what did slackness predict?");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("seed", &seed, "RNG seed");
  flags.add("max-surge", &max_surge, "largest workload factor simulated");
  flags.add("step", &step, "workload factor step");
  if (!flags.parse(argc, argv)) return 0;

  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = static_cast<std::size_t>(machines);
  config.num_strings = static_cast<std::size_t>(strings);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const model::SystemModel m = workload::generate(config, rng);

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 40;
  psg_options.ga.max_iterations = 250;
  psg_options.ga.stagnation_limit = 120;
  psg_options.trials = 2;
  util::Rng search_rng(1);
  const auto plan = core::SeededPsg(psg_options).allocate(m, search_rng);
  if (plan.allocation.num_deployed() != m.num_strings()) {
    std::printf("instance not lightly loaded enough for a complete mapping; "
                "re-run with fewer --strings\n");
    return 1;
  }
  std::printf("== Workload surge on a fixed allocation ==\n");
  std::printf("planned slackness: %.3f -> utilization headroom suggests the "
              "bottleneck saturates near factor %.2f\n\n",
              plan.fitness.slackness, 1.0 / (1.0 - plan.fitness.slackness));

  util::Table table({"workload factor", "datasets completed", "QoS violations",
                     "worst mean latency ratio"});
  for (double factor = 1.0; factor <= max_surge + 1e-9; factor += step) {
    const auto surged = sim::scale_input_workload(m, factor);
    const auto result = sim::simulate(surged, plan.allocation, {.horizon_s = 0.0});
    std::size_t datasets = 0;
    double worst_ratio = 0.0;
    for (std::size_t k = 0; k < m.num_strings(); ++k) {
      datasets += result.strings[k].datasets_completed;
      if (result.strings[k].latency_s.count() > 0) {
        worst_ratio = std::max(worst_ratio, result.strings[k].latency_s.mean() /
                                                m.strings[k].max_latency_s);
      }
    }
    table.add_row({util::Table::num(factor, 2), std::to_string(datasets),
                   std::to_string(result.total_violations()),
                   util::Table::num(worst_ratio, 2)});
  }
  table.print();
  std::printf("\nReading: violations stay at 0 while the surge remains inside "
              "the slack the planner left; the latency ratio crossing 1.0 is "
              "the first QoS breach.\n");
  return 0;
}
