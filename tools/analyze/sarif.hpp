/// \file sarif.hpp
/// SARIF 2.1.0 document builder for tsce_analyze findings, so the CI lint
/// job can upload machine-readable results and code hosts can annotate PRs.
/// Built on util::Json (in-repo, no third-party dependency).

#pragma once

#include <string>
#include <vector>

#include "analyze/rules.hpp"

namespace tsce::analyze {

/// Serializes \p findings as a SARIF 2.1.0 run.  Whole-file findings
/// (line 0) carry no region; every result references SRCROOT-relative URIs.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings,
                                   const std::string& tool_version);

}  // namespace tsce::analyze
