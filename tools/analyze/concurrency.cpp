#include "analyze/concurrency.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <tuple>

#include "util/json.hpp"

namespace tsce::analyze {

namespace {

/// Minimum non-constructor access sites before a guarded-by majority is
/// meaningful; with the 80% threshold the smallest reportable split is 4/5.
constexpr std::size_t kGuardedByMinSites = 5;

/// A (class, field) group of access sites with their resolved locksets.
struct FieldGroup {
  const FieldInfo* info = nullptr;
  std::vector<const FieldAccess*> sites;  ///< non-constructor accesses
  std::vector<std::set<std::string>> locksets;  ///< parallel to sites
};

std::string site_of(const std::vector<FileUnit>& units, const FieldAccess& a) {
  return units[a.file].rel + ":" + std::to_string(a.line);
}

bool pool_side(const AccessIndex& index, const FieldAccess& a) {
  return a.in_pool_lambda ||
         (a.node < index.pool_reachable.size() &&
          index.pool_reachable[a.node]);
}

/// Groups the index by (class, field), dropping constructor/destructor sites
/// (single-threaded by construction) and mutex-typed fields (their "accesses"
/// are the lock declarations themselves).
std::map<std::pair<std::string, std::string>, FieldGroup> group_fields(
    const AccessIndex& index) {
  std::map<std::pair<std::string, std::string>, FieldGroup> groups;
  for (const FieldAccess& a : index.accesses) {
    const auto cit = index.fields.find(a.cls);
    if (cit == index.fields.end()) continue;
    const auto fit = cit->second.find(a.field);
    if (fit == cit->second.end()) continue;
    if (fit->second.is_mutex) continue;
    if (a.in_ctor) continue;
    FieldGroup& g = groups[{a.cls, a.field}];
    g.info = &fit->second;
    g.sites.push_back(&a);
    g.locksets.push_back(index.lockset_of(a));
  }
  return groups;
}

/// Best-supported lock for a group: the key held at the most sites
/// (lexicographic tie-break for determinism).  Returns the count via
/// \p guarded.
std::string majority_lock(const FieldGroup& g, std::size_t* guarded) {
  std::map<std::string, std::size_t> votes;
  for (const std::set<std::string>& held : g.locksets) {
    for (const std::string& key : held) ++votes[key];
  }
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [key, count] : votes) {
    if (count > best_count) {
      best = key;
      best_count = count;
    }
  }
  *guarded = best_count;
  return best;
}

// --- guarded-by-inconsistency -----------------------------------------------

void rule_guarded_by_inconsistency(
    const std::vector<FileUnit>& units,
    const std::map<std::pair<std::string, std::string>, FieldGroup>& groups,
    std::vector<Finding>& out) {
  for (const auto& [key, g] : groups) {
    if (g.info->is_atomic || g.info->is_thread_local) continue;
    if (g.sites.size() < kGuardedByMinSites) continue;
    // A race needs a writer: a field only read outside its constructor is
    // immutable-after-construction (the lock at the majority sites is held
    // for some *other* field), so an unguarded read cannot race.
    const bool has_write =
        std::any_of(g.sites.begin(), g.sites.end(), [](const FieldAccess* a) {
          return a->kind == AccessKind::kWrite;
        });
    if (!has_write) continue;
    std::size_t guarded = 0;
    const std::string lock = majority_lock(g, &guarded);
    if (lock.empty() || guarded == g.sites.size()) continue;
    if (guarded * 5 < g.sites.size() * 4) continue;  // below the 80% bar

    // Spell out up to three majority-witness sites in the message.
    std::string witnesses;
    std::size_t listed = 0;
    for (std::size_t i = 0; i < g.sites.size() && listed < 3; ++i) {
      if (g.locksets[i].count(lock) == 0) continue;
      if (!witnesses.empty()) witnesses += ", ";
      witnesses += site_of(units, *g.sites[i]);
      ++listed;
    }
    if (listed < guarded) witnesses += ", ...";

    for (std::size_t i = 0; i < g.sites.size(); ++i) {
      if (g.locksets[i].count(lock) != 0) continue;
      const FieldAccess& a = *g.sites[i];
      out.push_back(
          {units[a.file].rel, a.line, "guarded-by-inconsistency",
           "field '" + key.first + "::" + key.second + "' is guarded by '" +
               lock + "' at " + std::to_string(guarded) + " of " +
               std::to_string(g.sites.size()) + " access sites (" + witnesses +
               ") but is accessed lock-free here; take the same lock or "
               "document why this site cannot race",
           {}});
    }
  }
}

// --- unguarded-shared-write -------------------------------------------------

/// Classes with *synchronization evidence*: a mutex/atomic member, or at
/// least one field access performed under a lock.  The RacerD insight: a
/// class that never synchronizes anything is per-task data handed between
/// threads by value or by ownership transfer (result structs, per-stream
/// Rngs) — reporting races on every such class would bury the real ones.
std::set<std::string> sync_evidence_classes(
    const AccessIndex& index,
    const std::map<std::pair<std::string, std::string>, FieldGroup>& groups) {
  std::set<std::string> classes;
  for (const auto& [cls, fields] : index.fields) {
    for (const auto& [name, info] : fields) {
      if (info.is_mutex || info.is_atomic) {
        classes.insert(cls);
        break;
      }
    }
  }
  for (const auto& [key, g] : groups) {
    if (classes.count(key.first) != 0) continue;
    for (const std::set<std::string>& held : g.locksets) {
      if (!held.empty()) {
        classes.insert(key.first);
        break;
      }
    }
  }
  return classes;
}

void rule_unguarded_shared_write(
    const std::vector<FileUnit>& units, const AccessIndex& index,
    const std::map<std::pair<std::string, std::string>, FieldGroup>& groups,
    std::vector<Finding>& out) {
  const std::set<std::string> sync_classes =
      sync_evidence_classes(index, groups);
  for (const auto& [key, g] : groups) {
    if (g.info->is_atomic || g.info->is_thread_local) continue;
    if (sync_classes.count(key.first) == 0) continue;
    bool pool = false;
    bool main_only = false;
    for (const FieldAccess* a : g.sites) {
      (pool_side(index, *a) ? pool : main_only) = true;
    }
    if (!pool || !main_only) continue;  // never crosses the thread boundary
    for (std::size_t i = 0; i < g.sites.size(); ++i) {
      const FieldAccess& a = *g.sites[i];
      if (a.kind != AccessKind::kWrite || !g.locksets[i].empty()) continue;
      // Witness the opposite partition so the message shows the race pair.
      std::string other;
      for (const FieldAccess* b : g.sites) {
        if (pool_side(index, *b) != pool_side(index, a)) {
          other = site_of(units, *b);
          break;
        }
      }
      out.push_back(
          {units[a.file].rel, a.line, "unguarded-shared-write",
           "plain write to '" + key.first + "::" + key.second +
               "' with no lock held, but the field is also touched " +
               (pool_side(index, a) ? "outside the pool" : "from pool-submitted code") +
               " at " + other +
               "; guard both sides, make the field std::atomic, or shard it "
               "per thread",
           {}});
    }
  }
}

// --- atomic-plain-mix -------------------------------------------------------

void rule_atomic_plain_mix(
    const std::vector<FileUnit>& units,
    const std::map<std::pair<std::string, std::string>, FieldGroup>& groups,
    std::vector<Finding>& out) {
  for (const auto& [key, g] : groups) {
    const FieldAccess* atomic_site = nullptr;
    for (const FieldAccess* a : g.sites) {
      if (a->kind == AccessKind::kAtomicOp) {
        atomic_site = a;
        break;
      }
    }
    if (atomic_site == nullptr) continue;
    for (const FieldAccess* a : g.sites) {
      if (a->kind != AccessKind::kWrite) continue;
      out.push_back(
          {units[a->file].rel, a->line, "atomic-plain-mix",
           "field '" + key.first + "::" + key.second +
               "' is accessed through atomic member calls (e.g. " +
               site_of(units, *atomic_site) +
               ") but written with a plain store here; spell every access "
               "through the atomic API so the memory ordering is explicit",
           {}});
    }
  }
}

// --- lock-scope-leak --------------------------------------------------------

void rule_lock_scope_leak(const std::vector<FileUnit>& units,
                          std::vector<Finding>& out) {
  for (const FileUnit& unit : units) {
    if (!unit.in_graph) continue;
    const TokenStream& ts = unit.ts;
    const auto& toks = ts.tokens();
    const std::size_t n = toks.size();
    for (const LockScope& lock : unit.structure.locks) {
      const std::string& guard = toks[lock.decl_idx].text;
      for (std::size_t k = lock.decl_idx + 1;
           k < lock.scope_end && k < n; ++k) {
        bool leaks = false;
        std::string how;
        if (toks[k].ident("return")) {
          // `return guard;` or `return std::move(guard);`
          std::size_t v = ts.next_code(k);
          std::size_t guard_steps = 0;
          while (v < n && guard_steps++ < 4 &&
                 (toks[v].ident("std") || toks[v].punct("::") ||
                  toks[v].ident("move") || toks[v].punct("("))) {
            v = ts.next_code(v);
          }
          if (v < n && toks[v].ident(guard)) {
            const std::size_t after = ts.next_code(v);
            if (after < n &&
                (toks[after].punct(";") || toks[after].punct(")"))) {
              leaks = true;
              how = "returned";
            }
          }
        } else if (toks[k].ident("move") && ts.at(k + 1).punct("(")) {
          const std::size_t v = ts.next_code(k + 1);
          if (v < n && toks[v].ident(guard) &&
              ts.at(ts.next_code(v)).punct(")")) {
            leaks = true;
            how = "moved";
          }
        }
        if (leaks) {
          out.push_back(
              {unit.rel, toks[k].line, "lock-scope-leak",
               "lock handle '" + guard + "' (acquired at line " +
                   std::to_string(lock.line) + ") is " + how +
                   " out of its scope; the analyzer credits the lock to this "
                   "scope, so every lockset derived from it would be wrong — "
                   "keep the guard where the critical section is",
               {}});
          break;  // one finding per lock scope
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_concurrency_rules(const std::vector<FileUnit>& units,
                                           const CallGraph& graph,
                                           const AccessIndex& index,
                                           std::vector<RuleStat>* stats) {
  (void)graph;
  std::vector<Finding> out;
  const auto groups = group_fields(index);
  const auto timed = [&](const char* name, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    if (stats != nullptr) {
      const auto t1 = std::chrono::steady_clock::now();
      stats->push_back(
          {name, std::chrono::duration<double, std::milli>(t1 - t0).count()});
    }
  };
  timed("guarded-by-inconsistency",
        [&] { rule_guarded_by_inconsistency(units, groups, out); });
  timed("unguarded-shared-write", [&] {
    rule_unguarded_shared_write(units, index, groups, out);
  });
  timed("atomic-plain-mix",
        [&] { rule_atomic_plain_mix(units, groups, out); });
  timed("lock-scope-leak", [&] { rule_lock_scope_leak(units, out); });
  return out;
}

std::string guarded_by_report_json(const std::vector<FileUnit>& units,
                                   const AccessIndex& index) {
  using tsce::util::Json;
  Json fields = Json::array();
  for (const auto& [key, g] : group_fields(index)) {
    Json entry = Json::object();
    entry.set("field", key.first + "::" + key.second);
    entry.set("type", g.info->type);
    entry.set("declared", units[g.info->file].rel + ":" +
                              std::to_string(g.info->line));
    entry.set("sites", g.sites.size());
    entry.set("atomic", g.info->is_atomic);
    entry.set("thread_local", g.info->is_thread_local);
    bool pool = false;
    for (const FieldAccess* a : g.sites) {
      if (pool_side(index, *a)) pool = true;
    }
    entry.set("pool_touched", pool);
    std::size_t guarded = 0;
    const std::string lock = majority_lock(g, &guarded);
    entry.set("lock", lock);
    entry.set("guarded_sites", guarded);
    entry.set("confidence",
              g.sites.empty()
                  ? 0.0
                  : static_cast<double>(guarded) /
                        static_cast<double>(g.sites.size()));
    fields.push_back(std::move(entry));
  }
  Json doc = Json::object();
  doc.set("tool", "tsce_analyze");
  doc.set("report", "guarded-by-inference");
  doc.set("version", 1);
  doc.set("fields", std::move(fields));
  return doc.dump(2);
}

}  // namespace tsce::analyze
