#include "analyze/accesses.hpp"

#include <algorithm>
#include <array>
#include <iterator>
#include <optional>
#include <tuple>

namespace tsce::analyze {

namespace {

using TK = TokenKind;

constexpr std::size_t npos = CallGraph::npos;

bool is_pool_call(const std::string& name) {
  return name == "submit" || name == "parallel_for" ||
         name == "for_each_index" || name == "for_each";
}

/// Member calls from the std::atomic vocabulary.  Deliberately excludes
/// names containers share (clear, wait, notify_*) — an ambiguous spelling
/// must not turn a vector into an "atomically accessed" field.
bool is_atomic_member_call(const std::string& name) {
  static constexpr std::array<std::string_view, 9> kOps = {
      "load",      "store",     "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "test_and_set"};
  return std::find(kOps.begin(), kOps.end(), name) != kOps.end() ||
         name.rfind("compare_exchange", 0) == 0;
}

bool is_mutex_type(const std::string& type_last) {
  return type_last == "mutex" || type_last == "shared_mutex" ||
         type_last == "recursive_mutex" || type_last == "timed_mutex" ||
         type_last == "recursive_timed_mutex" ||
         type_last == "condition_variable" ||
         type_last == "condition_variable_any";
}

/// Per-file [body_begin, body_end] extents of lambdas passed to a ThreadPool
/// entry point — code in these runs on a pool thread, not the caller's.
std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
pool_lambda_extents(const std::vector<FileUnit>& units) {
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> out(
      units.size());
  for (std::size_t f = 0; f < units.size(); ++f) {
    if (!units[f].in_graph) continue;
    const FileUnit& unit = units[f];
    for (const Call& call : unit.structure.calls) {
      if (!is_pool_call(call.name)) continue;
      for (const Lambda& lam : unit.structure.lambdas) {
        if (lam.intro_idx > call.open_idx && lam.intro_idx < call.close_idx) {
          out[f].emplace_back(lam.body_begin, lam.body_end);
        }
      }
    }
  }
  return out;
}

/// The pool-lambda extent covering \p tok_idx in file \p f, if any.
const std::pair<std::size_t, std::size_t>* covering_pool_lambda(
    const std::vector<std::vector<std::pair<std::size_t, std::size_t>>>&
        extents,
    std::size_t f, std::size_t tok_idx) {
  for (const auto& e : extents[f]) {
    if (tok_idx > e.first && tok_idx < e.second) return &e;
  }
  return nullptr;
}

/// Lock keys held at token \p at inside \p def.  Inside a pool-submitted
/// lambda only locks acquired within the lambda body count; the submitting
/// frame's guards are not held on the pool thread.
std::vector<std::string> locks_at(
    const std::vector<FileUnit>& units, const FunctionDef& def,
    std::size_t at,
    const std::pair<std::size_t, std::size_t>* pool_lambda) {
  const FileUnit& unit = units[def.file];
  std::vector<std::string> keys;
  for (const LockScope& lock : unit.structure.locks) {
    if (lock.decl_idx <= def.body_begin || lock.decl_idx >= def.body_end) {
      continue;
    }
    if (lock.decl_idx >= at || lock.scope_end <= at) continue;
    if (pool_lambda != nullptr && lock.decl_idx <= pool_lambda->first) {
      continue;  // acquired outside the lambda that owns this site
    }
    for (const std::string& chain : lock.mutexes) {
      const std::string key = mutex_key(unit, def, chain, lock.decl_idx);
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }
  return keys;
}

/// One class/struct body extent, for attributing field declarations.
struct ClassExtent {
  std::string name;
  std::size_t begin = 0;  ///< token index of the body '{'
  std::size_t end = 0;    ///< matching '}'
};

std::vector<ClassExtent> class_extents(const TokenStream& ts) {
  std::vector<ClassExtent> out;
  const auto& toks = ts.tokens();
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (!(t.ident("class") || t.ident("struct")) ||
        ts.at(ts.prev_code(i)).ident("enum")) {
      continue;
    }
    std::string cls;
    std::size_t k = ts.next_code(i);
    while (k < n) {
      const Token& ct = ts.at(k);
      if (ct.kind == TK::kIdentifier) {
        cls = ct.text;  // last component of a qualified name wins
        k = ts.next_code(k);
        continue;
      }
      if (ct.punct("::") || ct.ident("final")) {
        k = ts.next_code(k);
        continue;
      }
      if (ct.punct("<")) {
        const std::size_t close = ts.match_forward(k);
        if (close >= n) break;
        k = ts.next_code(close);
        continue;
      }
      if (ct.punct(":")) {  // base clause: skip to the body '{'
        while (k < n && !ts.at(k).punct("{") && !ts.at(k).punct(";")) {
          if (ts.at(k).punct("<")) {
            const std::size_t close = ts.match_forward(k);
            if (close >= n) break;
            k = close;
          }
          ++k;
        }
      }
      break;
    }
    if (k < n && ts.at(k).punct("{") && !cls.empty()) {
      const std::size_t close = ts.match_forward(k);
      if (close < n) out.push_back({cls, k, close});
    }
  }
  return out;
}

/// Innermost class extent covering \p idx; nullptr at namespace scope.
const ClassExtent* innermost_class(const std::vector<ClassExtent>& classes,
                                   std::size_t idx) {
  const ClassExtent* best = nullptr;
  for (const ClassExtent& c : classes) {
    if (idx <= c.begin || idx >= c.end) continue;
    if (best == nullptr || c.end - c.begin < best->end - best->begin) {
      best = &c;
    }
  }
  return best;
}

/// Assignment-flavored punctuation that makes the preceding postfix chain a
/// write.  `==` / `!=` lex as their own tokens, so "=" here is always a store.
bool is_assignment(const Token& t) {
  if (t.kind != TK::kPunct) return false;
  static constexpr std::array<std::string_view, 11> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return std::find(kOps.begin(), kOps.end(), t.text) != kOps.end();
}

}  // namespace

std::string mutex_key(const FileUnit& unit, const FunctionDef& def,
                      const std::string& chain, std::size_t at) {
  const std::size_t dot = chain.find('.');
  if (dot == std::string::npos) {
    if (!def.class_name.empty()) return def.class_name + "::" + chain;
    return unit.rel + "::" + chain;
  }
  const std::string head = chain.substr(0, dot);
  const std::string last = chain.substr(chain.rfind('.') + 1);
  const std::string rtype = unit.structure.type_of(head, at);
  if (!rtype.empty() && rtype != "auto") return rtype + "::" + last;
  return unit.rel + "::" + chain;
}

std::set<std::string> AccessIndex::lockset_of(const FieldAccess& a) const {
  std::set<std::string> out(a.local_locks.begin(), a.local_locks.end());
  if (!a.in_pool_lambda && a.node < entry_locks.size()) {
    out.insert(entry_locks[a.node].begin(), entry_locks[a.node].end());
  }
  return out;
}

AccessIndex build_access_index(const std::vector<FileUnit>& units,
                               const CallGraph& graph) {
  AccessIndex index;
  const auto pool_extents = pool_lambda_extents(units);

  // --- field table ----------------------------------------------------------
  // A scope-parser decl is a data member when it sits inside a class body but
  // outside every function definition body *and* signature (parameters are
  // decls too, and they live between a definition's name and its '{').
  for (std::size_t f = 0; f < units.size(); ++f) {
    if (!units[f].in_graph) continue;
    const FileUnit& unit = units[f];
    const std::vector<ClassExtent> classes = class_extents(unit.ts);
    if (classes.empty()) continue;
    std::vector<std::pair<std::size_t, std::size_t>> signatures;
    for (const CallGraph::Node& node : graph.nodes()) {
      for (const FunctionDef& def : node.defs) {
        if (def.file == f) signatures.emplace_back(def.name_idx, def.body_begin);
      }
    }
    for (const Decl& d : unit.structure.decls) {
      const ClassExtent* cls = innermost_class(classes, d.name_idx);
      if (cls == nullptr) continue;
      if (graph.enclosing(f, d.name_idx) != npos) continue;
      const bool in_signature = std::any_of(
          signatures.begin(), signatures.end(), [&](const auto& s) {
            return d.name_idx > s.first && d.name_idx < s.second;
          });
      if (in_signature) continue;
      // A name directly followed by '(' is a method declaration the decl
      // walker happened to record, not a data member.
      if (unit.ts.at(unit.ts.next_code(d.name_idx)).punct("(")) continue;
      FieldInfo info;
      info.type = d.type;
      info.type_last = d.type_last;
      info.is_atomic = d.type.find("atomic") != std::string::npos;
      info.is_mutex = is_mutex_type(d.type_last);
      info.is_thread_local = d.type.find("thread_local") != std::string::npos;
      info.file = f;
      info.line = unit.ts.at(d.name_idx).line;
      index.fields[cls->name].emplace(d.name, std::move(info));
    }
  }

  // --- thread-root partition ------------------------------------------------
  // Roots: callees of call edges whose site lies inside a pool-submitted
  // lambda.  Everything reachable from them runs (also) on pool threads.
  std::vector<std::size_t> roots;
  for (std::size_t node = 0; node < graph.nodes().size(); ++node) {
    for (const CallEdge& e : graph.nodes()[node].edges) {
      if (covering_pool_lambda(pool_extents, e.file, e.tok_idx) != nullptr &&
          std::find(roots.begin(), roots.end(), e.callee) == roots.end()) {
        roots.push_back(e.callee);
      }
    }
  }
  const std::vector<std::size_t> pool_parent = graph.reach_from(roots);
  index.pool_reachable.assign(graph.nodes().size(), false);
  for (std::size_t node = 0; node < graph.nodes().size(); ++node) {
    index.pool_reachable[node] = pool_parent[node] != npos;
  }

  // --- held-at-entry lockset dataflow ---------------------------------------
  // Must-hold analysis: entry(F) = ∩ over resolved call sites of
  // entry(caller) ∪ locks lexically held around the site.  A call made from
  // inside a pool lambda contributes only the locks acquired within the
  // lambda (the submitting frame's context does not transfer to the pool
  // thread).  TOP (= "no constraint yet") is the std::nullopt lattice top;
  // iteration is monotone decreasing, so the fixpoint loop converges — the
  // pass cap only bounds pathological SCC chains.
  const std::size_t count = graph.nodes().size();
  std::vector<std::optional<std::set<std::string>>> entry(count);
  std::vector<bool> has_caller(count, false);
  for (std::size_t u = 0; u < count; ++u) {
    for (const CallEdge& e : graph.nodes()[u].edges) {
      has_caller[e.callee] = true;
    }
  }
  for (std::size_t v = 0; v < count; ++v) {
    if (!has_caller[v]) entry[v] = std::set<std::string>{};
  }
  auto def_containing = [&](std::size_t u, std::size_t file,
                            std::size_t tok) -> const FunctionDef* {
    for (const FunctionDef& def : graph.nodes()[u].defs) {
      if (def.file == file && tok > def.body_begin && tok < def.body_end) {
        return &def;
      }
    }
    return nullptr;
  };
  for (std::size_t pass = 0; pass < 16; ++pass) {
    bool changed = false;
    for (std::size_t u = 0; u < count; ++u) {
      for (const CallEdge& e : graph.nodes()[u].edges) {
        const FunctionDef* def = def_containing(u, e.file, e.tok_idx);
        if (def == nullptr) continue;
        const auto* lam =
            covering_pool_lambda(pool_extents, e.file, e.tok_idx);
        const std::vector<std::string> site_locks =
            locks_at(units, *def, e.tok_idx, lam);
        std::set<std::string> contribution(site_locks.begin(),
                                           site_locks.end());
        if (lam == nullptr) {
          if (!entry[u].has_value()) continue;  // caller still TOP: no info
          contribution.insert(entry[u]->begin(), entry[u]->end());
        }
        if (!entry[e.callee].has_value()) {
          entry[e.callee] = std::move(contribution);
          changed = true;
          continue;
        }
        std::set<std::string> meet;
        std::set_intersection(entry[e.callee]->begin(), entry[e.callee]->end(),
                              contribution.begin(), contribution.end(),
                              std::inserter(meet, meet.begin()));
        if (meet != *entry[e.callee]) {
          entry[e.callee] = std::move(meet);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  index.entry_locks.assign(count, {});
  for (std::size_t v = 0; v < count; ++v) {
    if (entry[v].has_value()) index.entry_locks[v] = std::move(*entry[v]);
  }

  // --- member-access index --------------------------------------------------
  for (std::size_t node = 0; node < count; ++node) {
    for (const FunctionDef& def : graph.nodes()[node].defs) {
      const FileUnit& unit = units[def.file];
      const TokenStream& ts = unit.ts;
      const auto& toks = ts.tokens();
      const std::size_t n = toks.size();
      const bool is_ctor = !def.class_name.empty() &&
                           def.name == def.class_name;
      for (std::size_t i = def.body_begin + 1; i < def.body_end; ++i) {
        if (toks[i].kind != TK::kIdentifier) continue;
        if (graph.enclosing(def.file, i) != node) continue;  // nested def

        // Resolve (class, field) for this token, or skip.
        std::string cls;
        std::size_t chain_start = i;
        const std::size_t prev = ts.prev_code(i);
        const Token& p = ts.at(prev);
        if (p.punct(".") || p.punct("->")) {
          const std::size_t recv = ts.prev_code(prev);
          if (ts.at(recv).ident("this")) {
            cls = def.class_name;
            chain_start = recv;
          } else if (ts.at(recv).kind == TK::kIdentifier) {
            const std::string rtype =
                unit.structure.type_of(ts.at(recv).text, i);
            if (index.fields.count(rtype) == 0) continue;
            cls = rtype;
            chain_start = recv;
          } else {
            continue;  // chained off a call result or subscript
          }
        } else if (p.punct("::")) {
          continue;  // qualified / static access — out of scope
        } else {
          // Bare identifier: a member of the enclosing class, unless a local
          // declaration or a parameter shadows it.
          if (def.class_name.empty()) continue;
          const auto cit = index.fields.find(def.class_name);
          if (cit == index.fields.end() ||
              cit->second.count(toks[i].text) == 0) {
            continue;
          }
          const bool shadowed = std::any_of(
              unit.structure.decls.begin(), unit.structure.decls.end(),
              [&](const Decl& d) {
                if (d.name != toks[i].text) return false;
                const bool local = d.name_idx > def.body_begin &&
                                   d.name_idx <= i && d.scope_end >= i;
                const bool param = d.name_idx > def.name_idx &&
                                   d.name_idx < def.body_begin;
                return local || param;
              });
          if (shadowed) continue;
          cls = def.class_name;
        }
        const auto cit = index.fields.find(cls);
        if (cit == index.fields.end()) continue;
        if (cit->second.count(toks[i].text) == 0) continue;

        // Classify the access.
        FieldAccess access;
        access.cls = cls;
        access.field = toks[i].text;
        access.file = def.file;
        access.tok_idx = i;
        access.line = toks[i].line;
        access.node = node;
        access.in_ctor = is_ctor;
        access.kind = AccessKind::kRead;
        std::size_t after = ts.next_code(i);
        while (after < n && toks[after].punct("[")) {
          const std::size_t close = ts.match_forward(after);
          if (close >= n) break;
          after = ts.next_code(close);
        }
        if (after < n &&
            (toks[after].punct(".") || toks[after].punct("->"))) {
          const std::size_t m = ts.next_code(after);
          if (m < n && toks[m].kind == TK::kIdentifier &&
              ts.at(m + 1).punct("(")) {
            access.kind = is_atomic_member_call(toks[m].text)
                              ? AccessKind::kAtomicOp
                              : AccessKind::kCall;
          }
          // Otherwise a nested member access: `impl_->mu` reads impl_; the
          // nested token produces its own record if its class resolves.
        } else if (after < n && is_assignment(toks[after])) {
          access.kind = AccessKind::kWrite;
        } else if (after < n &&
                   (toks[after].punct("++") || toks[after].punct("--"))) {
          access.kind = AccessKind::kWrite;
        } else {
          const std::size_t before = ts.prev_code(chain_start);
          if (before < n &&
              (ts.at(before).punct("++") || ts.at(before).punct("--"))) {
            access.kind = AccessKind::kWrite;
          }
        }

        const auto* lam = covering_pool_lambda(pool_extents, def.file, i);
        access.in_pool_lambda = lam != nullptr;
        access.local_locks = locks_at(units, def, i, lam);
        index.accesses.push_back(std::move(access));
      }
    }
  }
  std::stable_sort(index.accesses.begin(), index.accesses.end(),
                   [](const FieldAccess& a, const FieldAccess& b) {
                     return std::tie(a.file, a.tok_idx) <
                            std::tie(b.file, b.tok_idx);
                   });
  return index;
}

}  // namespace tsce::analyze
