/// \file baseline.hpp
/// SARIF baseline diffing for tsce_analyze's CI gate.
///
/// A committed baseline SARIF document records the findings the project has
/// accepted; `tsce_analyze --baseline old.sarif` then fails only on findings
/// NOT present in the baseline.  Matching is on rule id + file +
/// partialFingerprints["tsceFingerprint/v1"] (a hash of the flagged line's
/// trimmed text) — deliberately not on line numbers, so unrelated edits that
/// shift a file do not resurrect accepted findings.  Multiset semantics: two
/// identical findings in the scan need two baseline entries.

#pragma once

#include <string>
#include <vector>

#include "analyze/rules.hpp"

namespace tsce::analyze {

struct BaselineDiff {
  std::vector<Finding> new_findings;  ///< findings with no baseline entry
  std::size_t in_baseline = 0;        ///< findings matched (and consumed)
};

/// Parses a SARIF 2.1.0 document and returns one matching key per result.
/// Throws std::exception-derived errors on malformed JSON; results without a
/// tsceFingerprint/v1 entry produce keys that can never match (they gate as
/// new findings — safer than silently matching on nothing).
[[nodiscard]] std::vector<std::string> baseline_keys_from_sarif(
    const std::string& sarif_text);

/// The same key for a live finding, so diff matching is symmetric.
[[nodiscard]] std::string baseline_key(const Finding& finding);

/// Splits \p findings into baseline-matched and new.
[[nodiscard]] BaselineDiff diff_against_baseline(
    const std::vector<Finding>& findings,
    const std::vector<std::string>& baseline_keys);

}  // namespace tsce::analyze
