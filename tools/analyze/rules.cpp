#include "analyze/rules.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>

#include "analyze/accesses.hpp"
#include "analyze/callgraph.hpp"
#include "analyze/concurrency.hpp"
#include "analyze/interp.hpp"
#include "analyze/lexer.hpp"
#include "analyze/scopes.hpp"

namespace tsce::analyze {

namespace {

using TK = TokenKind;

const std::array<RuleInfo, 19> kRegistry = {{
    {"deterministic-rng",
     "all randomness flows through util::Rng; no std::rand / srand / "
     "random_device / time() seeds outside tests/"},
    {"invalid-id-sentinel",
     "no bare -1 against MachineId/StringId/AppIndex; use model::kInvalidId / "
     "model::kUnassigned"},
    {"no-iostream-hot",
     "no <iostream> in src/core, src/analysis, src/model; use <cstdio>"},
    {"metric-name-registry",
     "metric/trace names come from src/obs/names.hpp; a literal under "
     "bench/tools/examples must match a registered name"},
    {"pragma-once", "headers use #pragma once, not #ifndef guards"},
    {"nondeterministic-iteration",
     "range-for over an unordered container must not feed order-sensitive "
     "writes (results, metrics, traces)"},
    {"float-fitness-equality",
     "==/!= on fitness/slackness doubles; compare std::bit_cast bit patterns "
     "(determinism auditor convention)"},
    {"lock-across-callback",
     "a lock_guard/unique_lock scope must not enclose ThreadPool::submit / "
     "for_each_index / user-callback invocation"},
    {"rng-shared-capture",
     "an Rng captured by reference into a thread-pool lambda must derive "
     "per-item streams via Rng::stream"},
    {"no-alloc-hot",
     "no new / make_unique / make_shared / push_back-without-reserve inside a "
     "TSCE_HOT function; hoist into ctor-sized scratch buffers"},
    {"transitive-hot-alloc",
     "no allocation in any function transitively reachable from a TSCE_HOT "
     "frame through the project call graph"},
    {"lock-order-cycle",
     "lock acquisition order composed along call edges must be acyclic; a "
     "cycle (or re-acquisition) is a potential deadlock"},
    {"rng-stream-escape",
     "a util::Rng& must not reach ThreadPool-submitted code without a "
     "Rng::stream derivation on the call path"},
    {"hot-path-virtual",
     "no virtual or std::function dispatch inside TSCE_HOT-reachable code; "
     "devirtualize or hoist the dispatch"},
    {"guarded-by-inconsistency",
     "a field guarded by the same lock at >= 80% of its access sites must not "
     "be touched lock-free at the remaining sites"},
    {"unguarded-shared-write",
     "no plain lock-free write to a field accessed from both pool-submitted "
     "and main-thread code; guard it, make it std::atomic, or shard it"},
    {"atomic-plain-mix",
     "a field accessed through atomic member calls (.load/.store/.fetch_*) "
     "must not also be written with plain stores"},
    {"lock-scope-leak",
     "a lock handle must not be returned or std::move'd out of the scope the "
     "analyzer credited it to; escaped guards poison every derived lockset"},
    {"unused-suppression",
     "every tsce-lint: allow(...) comment must suppress an actual finding"},
}};

bool in_dir(const std::string& rel, std::string_view prefix) {
  return rel.size() > prefix.size() &&
         rel.compare(0, prefix.size(), prefix) == 0 && rel[prefix.size()] == '/';
}

bool known_rule(std::string_view id) {
  return std::any_of(kRegistry.begin(), kRegistry.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

/// One `tsce-lint: allow(<rule>)` comment and the source lines it covers.
struct Suppression {
  std::string rule;
  std::size_t comment_line = 0;
  std::size_t also_covers = 0;  ///< next code line when the comment stands alone
  bool used = false;
};

/// Collects suppressions from comment tokens.  A comment sharing its line
/// with code covers that line; a comment-only line covers the next code line
/// as well (so long findings can carry the justification above them).
std::vector<Suppression> collect_suppressions(const TokenStream& ts) {
  std::vector<Suppression> out;
  const auto& toks = ts.tokens();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Preprocessor tokens swallow their trailing line comment, so a
    // suppression on an #include / #ifndef line lives inside the directive.
    if (toks[i].kind != TK::kComment && toks[i].kind != TK::kPreproc) continue;
    const std::string& text = toks[i].text;
    std::size_t at = text.find("tsce-lint: allow(");
    while (at != std::string::npos) {
      const std::size_t open = text.find('(', at);
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) break;
      Suppression s;
      s.rule = text.substr(open + 1, close - open - 1);
      // Rule ids are strictly kebab-case; anything else (e.g. the `<rule>`
      // placeholder in documentation) is prose, not a suppression attempt.
      const bool kebab =
          !s.rule.empty() &&
          s.rule.find_first_not_of("abcdefghijklmnopqrstuvwxyz-") ==
              std::string::npos;
      if (!kebab) {
        at = text.find("tsce-lint: allow(", close);
        continue;
      }
      s.comment_line = toks[i].line;
      // Comment-only line: no code token shares this line.
      bool code_on_line = false;
      for (const Token& t : toks) {
        if (t.line == s.comment_line && t.kind != TK::kComment &&
            t.kind != TK::kEof) {
          code_on_line = true;
          break;
        }
      }
      if (!code_on_line) {
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
          if (toks[k].kind != TK::kComment && toks[k].kind != TK::kEof) {
            s.also_covers = toks[k].line;
            break;
          }
        }
      }
      out.push_back(std::move(s));
      at = text.find("tsce-lint: allow(", close);
    }
  }
  return out;
}

/// Marks the first suppression covering (\p rule, \p line) as used; true
/// when the finding is absorbed.
bool absorb(std::vector<Suppression>& suppressions, std::string_view rule,
            std::size_t line) {
  for (Suppression& s : suppressions) {
    if (s.rule == rule &&
        (s.comment_line == line || (s.also_covers != 0 && s.also_covers == line))) {
      s.used = true;
      return true;
    }
  }
  return false;
}

/// Shared state for one file's analysis pass.
struct FileCheck {
  const std::string& rel;
  const TokenStream& ts;
  const FileStructure& fs;
  std::vector<Suppression>& suppressions;
  std::vector<Finding>& findings;
  /// Registered metric/trace names (src/obs/names.hpp literals); empty when
  /// the caller did not supply a registry.
  const std::vector<std::string>& registered_names;
  bool is_header = false;

  /// Reports unless a matching suppression covers \p line.
  void report(std::size_t line, std::string_view rule, std::string message) {
    if (absorb(suppressions, rule, line)) return;
    findings.push_back({rel, line, std::string(rule), std::move(message), {}});
  }
};

// --- upgraded token rules ---------------------------------------------------

void rule_deterministic_rng(FileCheck& c) {
  if (in_dir(c.rel, "tests")) return;
  const auto& toks = c.ts.tokens();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TK::kIdentifier) continue;
    const std::size_t prev = c.ts.prev_code(i);
    const bool std_qualified =
        prev < toks.size() && toks[prev].punct("::") &&
        c.ts.at(c.ts.prev_code(prev)).ident("std");
    bool bad = false;
    if (t.text == "rand" && std_qualified) bad = true;
    if (t.text == "srand" && c.ts.at(c.ts.next_code(i)).punct("(")) bad = true;
    if (t.text == "random_device") bad = true;
    if (t.text == "time") {
      const std::size_t open = c.ts.next_code(i);
      if (c.ts.at(open).punct("(")) {
        if (std_qualified) {
          bad = true;
        } else {
          const std::size_t arg = c.ts.next_code(open);
          const Token& a = c.ts.at(arg);
          bad = a.ident("nullptr") || a.ident("NULL") ||
                (a.kind == TK::kNumber && a.text == "0");
        }
      }
    }
    if (bad) {
      c.report(t.line, "deterministic-rng",
               "non-deterministic randomness source; derive from util::Rng "
               "(Rng::stream for parallel work)");
    }
  }
}

void rule_invalid_id_sentinel(FileCheck& c) {
  if (!in_dir(c.rel, "src")) return;
  const auto& toks = c.ts.tokens();
  // Per-line: an id-type name plus a unary -1 with no kInvalidId/kUnassigned.
  std::set<std::size_t> id_lines;
  std::set<std::size_t> sentinel_lines;
  std::set<std::size_t> minus_one_lines;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TK::kIdentifier) {
      if (t.text == "MachineId" || t.text == "StringId" || t.text == "AppIndex") {
        id_lines.insert(t.line);
      }
      if (t.text == "kInvalidId" || t.text == "kUnassigned") {
        sentinel_lines.insert(t.line);
      }
    }
    if (t.punct("-") && c.ts.at(i + 1).kind == TK::kNumber &&
        c.ts.at(i + 1).text == "1") {
      const std::size_t prev = c.ts.prev_code(i);
      const Token& p = c.ts.at(prev);
      const bool unary = prev >= toks.size() || p.kind == TK::kPunct;
      const bool binary_minus =
          p.kind == TK::kPunct && (p.text == ")" || p.text == "]");
      if (unary && !binary_minus) minus_one_lines.insert(t.line);
    }
  }
  for (std::size_t line : minus_one_lines) {
    if (id_lines.count(line) != 0 && sentinel_lines.count(line) == 0) {
      c.report(line, "invalid-id-sentinel",
               "bare -1 used with an id type; use model::kInvalidId / "
               "model::kUnassigned");
    }
  }
}

void rule_no_iostream_hot(FileCheck& c) {
  if (!in_dir(c.rel, "src/core") && !in_dir(c.rel, "src/analysis") &&
      !in_dir(c.rel, "src/model")) {
    return;
  }
  for (const Token& t : c.ts.tokens()) {
    if (t.kind == TK::kPreproc && t.text.find("include") != std::string::npos &&
        t.text.find("<iostream>") != std::string::npos) {
      c.report(t.line, "no-iostream-hot",
               "<iostream> in a hot-path module; use <cstdio>");
    }
  }
}

/// Strips the surrounding quotes off a plain string-literal token.  Raw
/// strings and literals with escapes are returned empty (registered metric
/// names are always plain, so such a literal can never match the registry).
std::string literal_value(const Token& t) {
  const std::string& s = t.text;
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') return {};
  if (s.find('\\') != std::string::npos) return {};
  return s.substr(1, s.size() - 2);
}

void rule_metric_name_registry(FileCheck& c) {
  if (in_dir(c.rel, "tests") || c.rel == "src/obs/names.hpp") return;
  const auto& toks = c.ts.tokens();
  // Under bench/, tools/, and examples/ a literal is tolerated when it names
  // a registered entry (the trees that *consume* telemetry may spell a name
  // out, but it must exist in src/obs/names.hpp so producers and consumers
  // agree).  With no registry supplied the strict literal ban applies
  // everywhere.
  const bool registry_scoped =
      !c.registered_names.empty() &&
      (in_dir(c.rel, "bench") || in_dir(c.rel, "tools") ||
       in_dir(c.rel, "examples"));
  auto registered = [&](const Token& t) {
    const std::string value = literal_value(t);
    return !value.empty() &&
           std::find(c.registered_names.begin(), c.registered_names.end(),
                     value) != c.registered_names.end();
  };
  auto check_literal = [&](std::size_t open_idx, std::size_t report_line,
                           std::string_view what) {
    const Token& arg = c.ts.at(c.ts.next_code(open_idx));
    if (arg.kind != TK::kString) return;
    if (!registry_scoped) {
      c.report(report_line, "metric-name-registry",
               std::string(what) +
                   " name passed as a string literal; add a constant "
                   "to src/obs/names.hpp and reference it");
    } else if (!registered(arg)) {
      c.report(report_line, "metric-name-registry",
               "unregistered " + std::string(what) + " name " + arg.text +
                   "; declare it in src/obs/names.hpp");
    }
  };
  for (const Call& call : c.fs.calls) {
    const bool metric_call = call.name == "counter" || call.name == "gauge" ||
                             call.name == "histogram" ||
                             call.name == "trace_event" || call.name == "Span";
    if (metric_call) {
      check_literal(call.open_idx, toks[call.name_idx].line, "metric/trace");
    }
  }
  // `obs::Span span("literal")` declares a variable: the call shape above
  // sees the variable name, so check Span declarations directly.
  for (const Decl& d : c.fs.decls) {
    if (d.type_last != "Span") continue;
    const std::size_t open = d.name_idx + 1;
    if (c.ts.at(open).punct("(")) {
      check_literal(open, toks[d.name_idx].line, "span");
    }
  }
}

void rule_pragma_once(FileCheck& c) {
  if (!c.is_header) return;
  bool saw_pragma_once = false;
  std::size_t guard_line = 0;
  for (const Token& t : c.ts.tokens()) {
    if (t.kind != TK::kPreproc) continue;
    if (t.text.find("pragma") != std::string::npos &&
        t.text.find("once") != std::string::npos) {
      saw_pragma_once = true;
    }
    if (guard_line == 0 && t.text.find("ifndef") != std::string::npos) {
      // Classic guard macro: trailing _H / _HPP (underscore-suffixed too).
      // The lexer folds a trailing line comment into the directive, so cut it
      // off before taking the last word.
      std::string s = t.text;
      const std::size_t slashes = s.find("//");
      if (slashes != std::string::npos) s.resize(slashes);
      std::size_t end = s.find_last_not_of(" \t\r");
      end = end == std::string::npos ? s.size() : end + 1;
      std::size_t begin = s.find_last_of(" \t", end - 1);
      begin = begin == std::string::npos ? 0 : begin + 1;
      std::string macro = s.substr(begin, end - begin);
      while (!macro.empty() && macro.back() == '_') macro.pop_back();
      const auto ends_with = [&](std::string_view suf) {
        return macro.size() >= suf.size() &&
               macro.compare(macro.size() - suf.size(), suf.size(), suf) == 0;
      };
      if (ends_with("_H") || ends_with("_HPP")) guard_line = t.line;
    }
  }
  if (guard_line != 0) {
    c.report(guard_line, "pragma-once",
             "classic #ifndef include guard; use #pragma once");
  }
  if (!saw_pragma_once) {
    c.report(0, "pragma-once", "header is missing #pragma once");
  }
}

// --- semantics-aware rules --------------------------------------------------

bool is_unordered_type(const std::string& type_last) {
  return type_last.rfind("unordered_", 0) == 0;
}

void rule_nondeterministic_iteration(FileCheck& c) {
  if (in_dir(c.rel, "tests")) return;
  const auto& toks = c.ts.tokens();
  for (const RangeFor& rf : c.fs.range_fors) {
    // Does the range expression name an unordered container?
    bool unordered = false;
    for (std::size_t k = rf.range_begin; k <= rf.range_end && k < toks.size();
         ++k) {
      if (toks[k].kind != TK::kIdentifier) continue;
      if (is_unordered_type(toks[k].text) ||
          is_unordered_type(c.fs.type_of(toks[k].text, rf.for_idx))) {
        unordered = true;
        break;
      }
    }
    if (!unordered) continue;

    auto declared_in_body = [&](const std::string& name) {
      if (std::find(rf.loop_vars.begin(), rf.loop_vars.end(), name) !=
          rf.loop_vars.end()) {
        return true;
      }
      return std::any_of(c.fs.decls.begin(), c.fs.decls.end(),
                         [&](const Decl& d) {
                           return d.name == name && d.name_idx > rf.body_begin &&
                                  d.name_idx < rf.body_end;
                         });
    };

    // The canonical remediation — collect into a local, sort, iterate the
    // sorted copy — appends in hash order on purpose; a later std::sort /
    // stable_sort over the same container canonicalizes it, so stay quiet.
    auto sorted_afterwards = [&](const std::string& name) {
      return std::any_of(
          c.fs.calls.begin(), c.fs.calls.end(), [&](const Call& call) {
            if (call.name_idx <= rf.body_end ||
                (call.name != "sort" && call.name != "stable_sort")) {
              return false;
            }
            for (std::size_t k = call.open_idx + 1; k < call.close_idx; ++k) {
              if (toks[k].ident(name)) return true;
            }
            return false;
          });
    };

    // Order-sensitive writes inside the body.
    std::string reason;
    for (const Call& call : c.fs.calls) {
      if (call.name_idx <= rf.body_begin || call.name_idx >= rf.body_end) continue;
      const bool appends = call.name == "push_back" ||
                           call.name == "emplace_back" || call.name == "insert" ||
                           call.name == "emplace" || call.name == "append" ||
                           call.name == "push_front";
      if (appends && !call.receiver.empty() &&
          !declared_in_body(call.receiver) && !sorted_afterwards(call.receiver)) {
        reason = "appends to '" + call.receiver + "' declared outside the loop";
        break;
      }
      if (call.name == "counter" || call.name == "gauge" ||
          call.name == "histogram" || call.name == "trace_event") {
        reason = "emits metrics/trace events";
        break;
      }
    }
    if (reason.empty()) {
      // Compound assignment to an outside variable.
      for (std::size_t k = rf.body_begin + 1; k < rf.body_end; ++k) {
        const Token& t = toks[k];
        if (t.kind != TK::kPunct ||
            (t.text != "+=" && t.text != "-=" && t.text != "*=" &&
             t.text != "/=")) {
          continue;
        }
        const std::size_t lhs = c.ts.prev_code(k);
        if (toks[lhs].kind == TK::kIdentifier &&
            !declared_in_body(toks[lhs].text)) {
          reason = "accumulates into '" + toks[lhs].text +
                   "' declared outside the loop";
          break;
        }
      }
    }
    if (!reason.empty()) {
      c.report(toks[rf.for_idx].line, "nondeterministic-iteration",
               "range-for over an unordered container " + reason +
                   "; iteration order is unspecified — iterate a sorted copy "
                   "or use an ordered container");
    }
  }
}

void rule_float_fitness_equality(FileCheck& c) {
  if (in_dir(c.rel, "tests")) return;
  const auto& toks = c.ts.tokens();

  // Is the postfix chain ending at token \p k (an identifier) a fitness
  // double?  Members named *slackness* always are; bare identifiers must be
  // declared double with a fitness/slack-flavored name.
  auto is_fitness_double = [&](std::size_t k) {
    const std::string& name = toks[k].text;
    const auto contains = [&](std::string_view sub) {
      return name.find(sub) != std::string::npos;
    };
    const std::size_t prev = c.ts.prev_code(k);
    const bool member =
        prev < toks.size() &&
        (toks[prev].punct(".") || toks[prev].punct("->"));
    if (member) return contains("slackness");
    return (contains("slack") || contains("fitness")) &&
           c.fs.type_of(name, k) == "double";
  };
  // Does the call whose ')' is at \p close wrap its operand in bit_cast?
  auto closes_bit_cast = [&](std::size_t close) {
    const std::size_t open = c.ts.match_backward(close);
    if (open >= toks.size()) return false;
    for (std::size_t k = open; k-- > 0;) {
      const Token& t = toks[k];
      if (t.kind == TK::kIdentifier) {
        if (t.text == "bit_cast") return true;
        continue;  // template args / qualifiers
      }
      if (t.kind == TK::kPunct &&
          (t.text == "::" || t.text == "<" || t.text == ">" ||
           t.text == ">>")) {
        continue;
      }
      break;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TK::kPunct ||
        (toks[i].text != "==" && toks[i].text != "!=")) {
      continue;
    }
    bool flagged = false;
    // Left operand: terminal token of the postfix chain.
    const std::size_t lhs = c.ts.prev_code(i);
    if (lhs < toks.size()) {
      if (toks[lhs].kind == TK::kIdentifier && is_fitness_double(lhs)) {
        flagged = true;
      } else if (toks[lhs].punct(")") && closes_bit_cast(lhs)) {
        // bit_cast pattern — intentional bit comparison.
      }
    }
    // Right operand: walk the postfix chain forward to its terminal.
    if (!flagged) {
      std::size_t k = c.ts.next_code(i);
      // Skip a leading std::bit_cast<...>( chain marker.
      bool rhs_bit_cast = false;
      std::size_t probe = k;
      std::size_t guard = 0;
      while (probe < toks.size() && guard++ < 8) {
        if (toks[probe].ident("bit_cast")) {
          rhs_bit_cast = true;
          break;
        }
        if (toks[probe].kind == TK::kIdentifier || toks[probe].punct("::")) {
          probe = c.ts.next_code(probe);
          continue;
        }
        break;
      }
      if (!rhs_bit_cast && k < toks.size() && toks[k].kind == TK::kIdentifier) {
        std::size_t term = k;
        while (true) {
          const std::size_t dot = c.ts.next_code(term);
          if (dot >= toks.size() ||
              !(toks[dot].punct(".") || toks[dot].punct("->"))) {
            break;
          }
          const std::size_t nxt = c.ts.next_code(dot);
          if (nxt >= toks.size() || toks[nxt].kind != TK::kIdentifier) break;
          term = nxt;
        }
        if (is_fitness_double(term)) flagged = true;
      }
    }
    if (flagged) {
      c.report(toks[i].line, "float-fitness-equality",
               "floating-point ==/!= on a fitness/slackness double; compare "
               "std::bit_cast<std::uint64_t> bit patterns (the determinism "
               "auditor convention)");
    }
  }
}

void rule_lock_across_callback(FileCheck& c) {
  const auto& toks = c.ts.tokens();
  auto inside_deferred_lambda = [&](std::size_t call_idx, std::size_t from) {
    // A lambda defined inside the lock scope runs later (unless immediately
    // invoked, which this heuristic accepts as a miss): skip its body.
    return std::any_of(c.fs.lambdas.begin(), c.fs.lambdas.end(),
                       [&](const Lambda& l) {
                         return l.intro_idx > from && l.body_begin < call_idx &&
                                call_idx < l.body_end;
                       });
  };
  for (const LockScope& lock : c.fs.locks) {
    for (const Call& call : c.fs.calls) {
      if (call.name_idx <= lock.decl_idx || call.name_idx >= lock.scope_end) {
        continue;
      }
      const bool pool_call = call.name == "submit" ||
                             call.name == "parallel_for" ||
                             call.name == "for_each_index" ||
                             call.name == "for_each";
      const bool callback_call =
          call.receiver.empty() &&
          (call.name == "callback" || call.name == "fn" ||
           (call.name.size() > 3 &&
            call.name.compare(call.name.size() - 3, 3, "_fn") == 0) ||
           (call.name.size() > 9 &&
            call.name.compare(call.name.size() - 9, 9, "_callback") == 0));
      if (!pool_call && !callback_call) continue;
      if (inside_deferred_lambda(call.name_idx, lock.decl_idx)) continue;
      c.report(lock.line, "lock-across-callback",
               "lock scope encloses '" + call.name +
                   "' (line " + std::to_string(toks[call.name_idx].line) +
                   "); release the lock before handing work to the pool or a "
                   "callback");
      break;  // one finding per lock scope
    }
  }
}

void rule_rng_shared_capture(FileCheck& c) {
  const auto& toks = c.ts.tokens();
  auto is_rng_type = [](const std::string& type_last) {
    return type_last == "Rng";
  };
  for (const Call& call : c.fs.calls) {
    const bool pool_call = call.name == "submit" || call.name == "parallel_for" ||
                           call.name == "for_each_index" ||
                           call.name == "for_each";
    if (!pool_call) continue;
    for (const Lambda& lam : c.fs.lambdas) {
      if (lam.intro_idx <= call.open_idx || lam.intro_idx >= call.close_idx) {
        continue;
      }
      // Which Rng does the lambda see by reference?
      std::string shared_rng;
      bool default_ref = false;
      for (const Capture& cap : lam.captures) {
        if (cap.is_default && cap.by_ref) default_ref = true;
        if (cap.by_ref && !cap.name.empty() &&
            is_rng_type(c.fs.type_of(cap.name, lam.intro_idx))) {
          shared_rng = cap.name;
        }
      }
      if (shared_rng.empty() && default_ref) {
        for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
          if (toks[k].kind == TK::kIdentifier &&
              is_rng_type(c.fs.type_of(toks[k].text, lam.intro_idx))) {
            shared_rng = toks[k].text;
            break;
          }
        }
      }
      if (shared_rng.empty()) continue;
      // The lambda is fine when it derives per-item streams.
      bool derives_stream = false;
      for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
        if (toks[k].ident("stream")) {
          derives_stream = true;
          break;
        }
      }
      if (!derives_stream) {
        c.report(toks[lam.intro_idx].line, "rng-shared-capture",
                 "lambda handed to '" + call.name + "' captures Rng '" +
                     shared_rng +
                     "' by reference without deriving a per-item "
                     "util::Rng::stream(seed, index); results depend on the "
                     "thread schedule");
      }
    }
  }
}

void rule_no_alloc_hot(FileCheck& c) {
  if (!in_dir(c.rel, "src")) return;
  const auto& toks = c.ts.tokens();

  // Body extents of functions annotated TSCE_HOT (src/util/hot.hpp): from
  // the annotation, skip the signature (matched parameter parens, trailing
  // const/noexcept/-> Type), then take the matched brace block.  A trailing
  // ';' before '{' means declaration-only — nothing to check.
  struct Extent {
    std::size_t begin, end;
  };
  std::vector<Extent> hot;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident("TSCE_HOT")) continue;
    std::size_t k = c.ts.next_code(i);
    std::size_t open = toks.size();
    while (k < toks.size()) {
      const Token& t = c.ts.at(k);
      if (t.punct("(")) {
        open = k;
        break;
      }
      if (t.punct(";") || t.punct("{") || t.kind == TK::kEof) break;
      k = c.ts.next_code(k);
    }
    if (open >= toks.size()) continue;
    k = c.ts.next_code(c.ts.match_forward(open));
    while (k < toks.size()) {
      const Token& t = c.ts.at(k);
      if (t.punct("{")) {
        hot.push_back({k, c.ts.match_forward(k)});
        break;
      }
      if (t.punct(";") || t.kind == TK::kEof) break;
      // noexcept(...) and trailing-return template args have their own
      // brackets; jump over them instead of mistaking one for the body.
      if (t.punct("(") || t.punct("<")) {
        k = c.ts.next_code(c.ts.match_forward(k));
        continue;
      }
      k = c.ts.next_code(k);
    }
  }
  if (hot.empty()) return;
  const auto in_hot = [&](std::size_t idx) {
    return std::any_of(hot.begin(), hot.end(), [&](const Extent& e) {
      return idx > e.begin && idx < e.end;
    });
  };
  // A same-file reserve on the receiver sizes the buffer up front (the
  // scratch-in-ctor pattern), making steady-state growth allocation-free.
  const auto reserved_somewhere = [&](const std::string& receiver) {
    return std::any_of(c.fs.calls.begin(), c.fs.calls.end(),
                       [&](const Call& call) {
                         return call.name == "reserve" &&
                                call.receiver == receiver;
                       });
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!in_hot(i)) continue;
    if (toks[i].ident("new")) {
      // `operator new` overloads define allocation, they don't perform it.
      if (c.ts.at(c.ts.prev_code(i)).ident("operator")) continue;
      c.report(toks[i].line, "no-alloc-hot",
               "new-expression in a TSCE_HOT function; allocate in the "
               "constructor or an arena and reuse the buffer");
    }
    if (toks[i].ident("make_unique") || toks[i].ident("make_shared")) {
      // Token-level match because the scope parser's call table only records
      // `name(` — an explicit template argument list (`make_unique<T>(...)`,
      // the common spelling) hides the '(' from it.
      std::size_t k = c.ts.next_code(i);
      if (k < toks.size() && c.ts.at(k).punct("<")) {
        k = c.ts.next_code(c.ts.match_forward(k));
      }
      if (k < toks.size() && c.ts.at(k).punct("(")) {
        c.report(toks[i].line, "no-alloc-hot",
                 "'" + toks[i].text +
                     "' in a TSCE_HOT function; hoist the allocation out of "
                     "the per-candidate path");
      }
    }
  }
  for (const Call& call : c.fs.calls) {
    if (!in_hot(call.name_idx)) continue;
    if ((call.name == "push_back" || call.name == "emplace_back") &&
        !call.receiver.empty() && !reserved_somewhere(call.receiver)) {
      c.report(toks[call.name_idx].line, "no-alloc-hot",
               "'" + call.receiver + "." + call.name +
                   "' in a TSCE_HOT function without a reserve() on '" +
                   call.receiver +
                   "' in this file; size the buffer up front");
    }
  }
}

/// The per-file rule table, in registry order — table-driven so the project
/// pass can attribute wall-time to each rule for --stats.
struct FileRule {
  std::string_view name;
  void (*run)(FileCheck&);
};

constexpr std::array<FileRule, 10> kFileRules = {{
    {"deterministic-rng", rule_deterministic_rng},
    {"invalid-id-sentinel", rule_invalid_id_sentinel},
    {"no-iostream-hot", rule_no_iostream_hot},
    {"metric-name-registry", rule_metric_name_registry},
    {"pragma-once", rule_pragma_once},
    {"nondeterministic-iteration", rule_nondeterministic_iteration},
    {"float-fitness-equality", rule_float_fitness_equality},
    {"lock-across-callback", rule_lock_across_callback},
    {"rng-shared-capture", rule_rng_shared_capture},
    {"no-alloc-hot", rule_no_alloc_hot},
}};

double millis_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs every per-file rule on one parsed unit (the interprocedural rules and
/// the unused-suppression finalization happen at project level), accumulating
/// per-rule wall-time into \p timings.
void run_file_rules(const std::string& rel, const TokenStream& ts,
                    const FileStructure& fs,
                    std::vector<Suppression>& suppressions,
                    const std::vector<std::string>& registered_names,
                    std::vector<Finding>& findings,
                    std::map<std::string_view, double>& timings) {
  FileCheck check{rel, ts, fs, suppressions, findings, registered_names,
                  rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".hpp") == 0};
  for (const FileRule& rule : kFileRules) {
    const auto t0 = std::chrono::steady_clock::now();
    rule.run(check);
    timings[rule.name] += millis_since(t0);
  }
}

/// unused-suppression runs last: every allow() that did not absorb a finding
/// is itself a finding (suppressible at its own line, for the rare
/// intentionally-ahead-of-its-time suppression).
void finalize_suppressions(const std::string& rel,
                           std::vector<Suppression>& suppressions,
                           std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < suppressions.size(); ++i) {
    Suppression& s = suppressions[i];
    if (s.used || s.rule == "unused-suppression") continue;
    const std::string message =
        known_rule(s.rule)
            ? "stale suppression: allow(" + s.rule + ") matches no finding"
            : "unknown rule in suppression: allow(" + s.rule + ")";
    // Suppressible by allow(unused-suppression) on the same line.
    bool absorbed = false;
    for (Suppression& meta : suppressions) {
      if (meta.rule == "unused-suppression" &&
          (meta.comment_line == s.comment_line ||
           meta.also_covers == s.comment_line)) {
        meta.used = true;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      findings.push_back(
          {rel, s.comment_line, "unused-suppression", message, {}});
    }
  }
  for (const Suppression& s : suppressions) {
    if (s.rule == "unused-suppression" && !s.used) {
      findings.push_back({rel, s.comment_line, "unused-suppression",
                          "stale suppression: allow(unused-suppression) "
                          "matches no finding",
                          {}});
    }
  }
}

/// Trimmed text of 1-based \p line of \p source; empty when out of range.
std::string_view trimmed_line(std::string_view source, std::size_t line) {
  std::size_t start = 0;
  for (std::size_t n = 1; n < line; ++n) {
    start = source.find('\n', start);
    if (start == std::string_view::npos) return {};
    ++start;
  }
  const std::size_t end = source.find('\n', start);
  std::string_view text = source.substr(
      start, end == std::string_view::npos ? end : end - start);
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// FNV-1a (64-bit, hex) over rule|file|trimmed-line-text.  Hashing the line's
/// *text* rather than its number keeps the fingerprint stable across edits
/// elsewhere in the file, which is what makes SARIF baseline diffing honest.
std::string fingerprint_of(const Finding& f, std::string_view source) {
  std::string key = f.rule + "|" + f.file + "|";
  if (f.line == 0) {
    key += "whole-file";
  } else {
    key += trimmed_line(source, f.line);
  }
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char ch : key) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  std::string hex(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    hex[i] = "0123456789abcdef"[(h >> (60 - 4 * i)) & 0xF];
  }
  return hex;
}

}  // namespace

const std::array<RuleInfo, 19>& rule_registry() noexcept { return kRegistry; }

ProjectResult analyze_project(const std::vector<FileInput>& files,
                              const std::vector<std::string>& registered_names,
                              bool want_dot) {
  ProjectResult result;
  std::vector<FileUnit> units;
  std::vector<std::vector<Suppression>> suppressions;
  units.reserve(files.size());
  suppressions.reserve(files.size());
  auto t0 = std::chrono::steady_clock::now();
  for (const FileInput& f : files) {
    TokenStream ts{lex(f.source)};
    FileStructure structure = parse_structure(ts);
    suppressions.push_back(collect_suppressions(ts));
    const bool in_graph = in_dir(f.rel, "src") || in_dir(f.rel, "bench") ||
                          in_dir(f.rel, "tools");
    units.push_back({f.rel, std::move(ts), std::move(structure), in_graph});
  }
  result.stats.push_back({"(lex+parse)", millis_since(t0)});

  std::map<std::string_view, double> file_rule_millis;
  for (std::size_t i = 0; i < units.size(); ++i) {
    run_file_rules(units[i].rel, units[i].ts, units[i].structure,
                   suppressions[i], registered_names, result.findings,
                   file_rule_millis);
  }
  for (const FileRule& rule : kFileRules) {
    result.stats.push_back(
        {std::string(rule.name), file_rule_millis[rule.name]});
  }

  t0 = std::chrono::steady_clock::now();
  const CallGraph graph = build_call_graph(units);
  result.stats.push_back({"(callgraph)", millis_since(t0)});
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t i = 0; i < units.size(); ++i) {
    by_rel.emplace(units[i].rel, i);
  }
  // Interprocedural and concurrency findings flow through the same
  // per-file suppression lists as the local rules.
  const auto route = [&](std::vector<Finding> raw) {
    for (Finding& f : raw) {
      const auto it = by_rel.find(f.file);
      if (it != by_rel.end() &&
          absorb(suppressions[it->second], f.rule, f.line)) {
        continue;
      }
      result.findings.push_back(std::move(f));
    }
  };
  route(run_interprocedural_rules(units, graph, &result.stats));

  t0 = std::chrono::steady_clock::now();
  const AccessIndex access_index = build_access_index(units, graph);
  result.stats.push_back({"(accesses)", millis_since(t0)});
  route(run_concurrency_rules(units, graph, access_index, &result.stats));
  result.guarded_by_report = guarded_by_report_json(units, access_index);

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < units.size(); ++i) {
    finalize_suppressions(units[i].rel, suppressions[i], result.findings);
  }
  result.stats.push_back({"unused-suppression", millis_since(t0)});

  for (Finding& f : result.findings) {
    const auto it = by_rel.find(f.file);
    f.fingerprint = fingerprint_of(
        f, it == by_rel.end() ? std::string_view{}
                              : std::string_view(files[it->second].source));
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.file, a.line, a.rule) <
                            std::tie(b.file, b.line, b.rule);
                   });

  if (want_dot) result.callgraph_dot = graph.to_dot();
  return result;
}

std::vector<Finding> analyze_source(const std::string& rel_path,
                                    std::string_view source) {
  static const std::vector<std::string> kNoNames;
  return analyze_source(rel_path, source, kNoNames);
}

std::vector<std::string> extract_registered_names(
    std::string_view names_source) {
  std::vector<std::string> names;
  for (const Token& t : lex(names_source)) {
    if (t.kind != TK::kString) continue;
    const std::string& s = t.text;
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
      names.push_back(s.substr(1, s.size() - 2));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> analyze_source(
    const std::string& rel_path, std::string_view source,
    const std::vector<std::string>& registered_names) {
  std::vector<FileInput> files;
  files.push_back({rel_path, std::string(source)});
  return analyze_project(files, registered_names).findings;
}

}  // namespace tsce::analyze
