/// \file lexer.hpp
/// C++ token stream for tsce_analyze.  Self-contained (no libclang): enough
/// of the lexical grammar to make rule matching honest — string/char
/// literals, raw strings, line/block comments, preprocessor directives with
/// continuations, multi-character operators, and line numbers per token.
/// Comments are kept as tokens so the suppression scanner and the
/// unused-suppression rule see them; rule matchers skip them via
/// TokenStream::next_code / prev_code.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tsce::analyze {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (rules match on spelling)
  kNumber,      ///< integer / floating literal, suffixes included
  kString,      ///< "..." or R"tag(...)tag" — text is the full literal
  kChar,        ///< '...'
  kPunct,       ///< operators and punctuation, longest-match (e.g. "==", "->")
  kComment,     ///< // or /* */ — text includes the delimiters
  kPreproc,     ///< one full # directive, backslash continuations folded in
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character

  [[nodiscard]] bool is(TokenKind k, std::string_view spelling) const noexcept {
    return kind == k && text == spelling;
  }
  [[nodiscard]] bool ident(std::string_view spelling) const noexcept {
    return is(TokenKind::kIdentifier, spelling);
  }
  [[nodiscard]] bool punct(std::string_view spelling) const noexcept {
    return is(TokenKind::kPunct, spelling);
  }
};

/// Lexes \p source in one pass.  Unterminated literals/comments are tolerated
/// (the token simply runs to end of input): the analyzer must never crash on
/// the code it audits.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

/// Cursor-free helpers over a lexed buffer.  Indices returned by the skip
/// helpers are clamped to the buffer (the final kEof token), so callers can
/// chain them without bounds checks.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] const std::vector<Token>& tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::size_t size() const noexcept { return tokens_.size(); }
  [[nodiscard]] const Token& at(std::size_t i) const noexcept {
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  /// Index of the next/previous non-comment, non-preprocessor token strictly
  /// after/before \p i; size() (EOF) when none.
  [[nodiscard]] std::size_t next_code(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t prev_code(std::size_t i) const noexcept;

  /// Given \p i at an opening bracket token ("(", "[", "{", or "<"), returns
  /// the index of its balanced closing token; size() when unbalanced.  For
  /// "<" the scan bails out on tokens that cannot appear inside a template
  /// argument list (";", "{", "}"), so comparison operators do not send it
  /// off a cliff.
  [[nodiscard]] std::size_t match_forward(std::size_t i) const noexcept;
  /// Reverse of match_forward: \p i at ")", "]", "}", or ">" (template args).
  [[nodiscard]] std::size_t match_backward(std::size_t i) const noexcept;

 private:
  std::vector<Token> tokens_;
};

}  // namespace tsce::analyze
