/// \file interp.hpp
/// The four interprocedural rule visitors of tsce_analyze, written against
/// the project call graph (callgraph.hpp):
///
///   transitive-hot-alloc  allocation sites in functions reachable from a
///                         TSCE_HOT frame through any call chain (the
///                         per-file no-alloc-hot rule covers the annotated
///                         frame itself; this covers everything it calls);
///   lock-order-cycle      per-function lock acquisition extents composed
///                         along call edges into a global mutex-order graph;
///                         any cycle — including a re-acquisition self-loop —
///                         is a potential deadlock;
///   rng-stream-escape     a util::Rng& parameter reaching a function that is
///                         also reachable from a ThreadPool submission site
///                         without a Rng::stream derivation on the path;
///   hot-path-virtual      virtual or std::function dispatch inside
///                         TSCE_HOT-reachable code (devirtualization
///                         candidates for the service hot path).
///
/// Findings come back raw; analyze_project routes them through each file's
/// suppression list before they become diagnostics.

#pragma once

#include <vector>

#include "analyze/callgraph.hpp"
#include "analyze/rules.hpp"

namespace tsce::analyze {

/// \p stats, when non-null, receives one wall-time row per rule (--stats).
[[nodiscard]] std::vector<Finding> run_interprocedural_rules(
    const std::vector<FileUnit>& units, const CallGraph& graph,
    std::vector<RuleStat>* stats = nullptr);

}  // namespace tsce::analyze
