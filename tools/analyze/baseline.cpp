#include "analyze/baseline.hpp"

#include <map>

#include "util/json.hpp"

namespace tsce::analyze {

using tsce::util::Json;

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + finding.file + "|" + finding.fingerprint;
}

std::vector<std::string> baseline_keys_from_sarif(
    const std::string& sarif_text) {
  std::vector<std::string> keys;
  const Json doc = Json::parse(sarif_text);
  if (!doc.contains("runs")) return keys;
  for (const Json& run : doc.at("runs").as_array()) {
    if (!run.contains("results")) continue;
    for (const Json& result : run.at("results").as_array()) {
      std::string rule;
      if (result.contains("ruleId")) rule = result.at("ruleId").as_string();
      std::string file;
      if (result.contains("locations")) {
        const Json::Array& locs = result.at("locations").as_array();
        if (!locs.empty() && locs.front().contains("physicalLocation")) {
          const Json& phys = locs.front().at("physicalLocation");
          if (phys.contains("artifactLocation") &&
              phys.at("artifactLocation").contains("uri")) {
            file = phys.at("artifactLocation").at("uri").as_string();
          }
        }
      }
      std::string fingerprint;
      if (result.contains("partialFingerprints") &&
          result.at("partialFingerprints").contains("tsceFingerprint/v1")) {
        fingerprint =
            result.at("partialFingerprints").at("tsceFingerprint/v1").as_string();
      }
      keys.push_back(rule + "|" + file + "|" + fingerprint);
    }
  }
  return keys;
}

BaselineDiff diff_against_baseline(
    const std::vector<Finding>& findings,
    const std::vector<std::string>& baseline_keys) {
  std::map<std::string, std::size_t> pool;
  for (const std::string& key : baseline_keys) ++pool[key];
  BaselineDiff diff;
  for (const Finding& f : findings) {
    const auto it = pool.find(baseline_key(f));
    if (it != pool.end() && it->second > 0) {
      --it->second;
      ++diff.in_baseline;
    } else {
      diff.new_findings.push_back(f);
    }
  }
  return diff;
}

}  // namespace tsce::analyze
