/// \file callgraph.hpp
/// Project-wide call graph for tsce_analyze's interprocedural rules.
///
/// The builder indexes every function and method *definition* across the
/// graph-eligible trees (src/, bench/, tools/ — tests and examples stay
/// per-file only), then resolves each call expression recorded by the scope
/// parser to a definition:
///
///   - `obj.method(...)` / `ptr->method(...)` resolve through the scope
///     parser's receiver-type inference (FileStructure::type_of) to
///     `Type::method`;
///   - `Class::fn(...)` resolves on the explicit qualifier;
///   - an unqualified `fn(...)` inside a method of class C prefers `C::fn`,
///     then a free function `fn`, then — only when the name has exactly one
///     definition project-wide — that unique definition.  Ambiguous bare
///     names stay unresolved: a dangling edge is a false negative, a guessed
///     edge is a false positive, and interprocedural findings must be
///     trustworthy enough to gate CI.
///
/// On top of the edge list the graph computes Tarjan SCCs (so reachability
/// and set propagation converge on cyclic call chains) and exposes the
/// forward-reachability and fixpoint helpers the four interprocedural rules
/// (rules in interp.cpp) are written against.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "analyze/scopes.hpp"

namespace tsce::analyze {

/// One analyzed translation unit, owned by the project pass and shared by
/// every interprocedural rule.
struct FileUnit {
  std::string rel;        ///< repo-relative path
  TokenStream ts;         ///< lexed token stream
  FileStructure structure;  ///< scope-parser output
  bool in_graph = false;  ///< definitions indexed into the call graph?
};

/// A function or method definition: one node contribution.  Overloads (and
/// re-definitions across .hpp/.cpp splits the indexer cannot tell apart)
/// share a graph node keyed on the qualified name; the node keeps every
/// definition's body extent.
struct FunctionDef {
  std::string name;        ///< unqualified spelling
  std::string class_name;  ///< enclosing class/struct or explicit qualifier
  std::size_t file = 0;    ///< index into the FileUnit vector
  std::size_t name_idx = 0;   ///< token index of the name
  std::size_t body_begin = 0; ///< token index of the body '{'
  std::size_t body_end = 0;   ///< matching '}'
  std::size_t line = 0;
  bool hot = false;        ///< TSCE_HOT annotation on this definition

  [[nodiscard]] std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// A resolved call edge, with the site it was resolved from (for path
/// reconstruction in finding messages).
struct CallEdge {
  std::size_t callee = 0;    ///< node index
  std::size_t file = 0;      ///< site: FileUnit index
  std::size_t tok_idx = 0;   ///< site: token index of the callee name
  std::size_t line = 0;      ///< site: 1-based line
};

class CallGraph {
 public:
  struct Node {
    std::string qualified;
    std::vector<FunctionDef> defs;
    std::vector<CallEdge> edges;  ///< outgoing, deduplicated per (callee, line)
    bool hot = false;             ///< any definition annotated TSCE_HOT
  };

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Node index for a qualified name; npos when not defined in the project.
  [[nodiscard]] std::size_t find(const std::string& qualified) const;

  /// Node containing token \p tok_idx of file \p file in a definition body
  /// (innermost definition wins for nested/lambda-local code); npos if the
  /// token lies outside every indexed body.
  [[nodiscard]] std::size_t enclosing(std::size_t file, std::size_t tok_idx) const;

  /// Forward BFS over call edges from the given roots; returns one parent
  /// node index per node (npos = unreached, self = root) so rules can
  /// reconstruct a witness path with path_to().
  [[nodiscard]] std::vector<std::size_t> reach_from(
      const std::vector<std::size_t>& roots) const;

  /// Witness call chain "a -> b -> c" from a root to \p node given the
  /// parent array of reach_from.
  [[nodiscard]] std::string path_to(const std::vector<std::size_t>& parents,
                                    std::size_t node) const;

  /// Strongly connected components in reverse topological order (callees
  /// before callers): component id per node, plus the node lists.
  [[nodiscard]] const std::vector<std::size_t>& scc_of() const noexcept {
    return scc_of_;
  }
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& sccs()
      const noexcept {
    return sccs_;
  }

  /// Methods declared `virtual` or `override` anywhere in the indexed units
  /// (declarations count, bodies not required): method name -> sorted class
  /// names declaring it.  Drives the hot-path-virtual rule.
  [[nodiscard]] const std::map<std::string, std::vector<std::string>>&
  virtual_methods() const noexcept {
    return virtuals_;
  }

  /// Graphviz DOT rendering: one node per function, hot nodes and
  /// hot-reachable nodes filled, SCCs of size > 1 noted.
  [[nodiscard]] std::string to_dot() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  friend CallGraph build_call_graph(const std::vector<FileUnit>& units);

  std::vector<Node> nodes_;
  std::map<std::string, std::size_t> by_name_;
  std::map<std::string, std::vector<std::string>> virtuals_;
  std::vector<std::size_t> scc_of_;
  std::vector<std::vector<std::size_t>> sccs_;
};

/// Indexes every definition in the graph-eligible units and resolves calls
/// into edges.  Deterministic: files are processed in vector order and all
/// tie-breaks are lexicographic.
[[nodiscard]] CallGraph build_call_graph(const std::vector<FileUnit>& units);

}  // namespace tsce::analyze
