/// \file accesses.hpp
/// Member-field access index and lockset dataflow for tsce_analyze's
/// concurrency tier (rules in concurrency.hpp).
///
/// Three layers, all computed over the PR 8 call graph:
///
///   1. a **field table**: every data member declared in a class/struct body
///      across the graph-eligible units, with its textual type and the
///      properties the rules discriminate on (std::atomic, mutex-family,
///      thread_local);
///   2. a **member-access index**: every member read / write / atomic member
///      call / other member call inside a function definition, attributed to
///      its (receiver class, field) and stamped with the lock scopes the
///      scope parser sees covering the site;
///   3. an **interprocedural lockset dataflow**: a must-hold "held at entry"
///      set per function (intersection over every resolved call site of the
///      caller's entry set plus the locks lexically held around the call),
///      iterated to a fixpoint over the SCC-condensed graph, plus a
///      **thread-root partition** marking the functions reachable from
///      pool-submitted lambdas (ThreadPool submit / parallel_for /
///      for_each_index / for_each capture sites) as pool-side.
///
/// The final lockset of an access is entry_locks(function) ∪ the locks
/// lexically covering the site — except inside a pool-submitted lambda,
/// where only locks acquired *inside* the lambda body count (the submitting
/// frame's guards are not held when the lambda runs on a pool thread).
///
/// Heuristic by design, like the scope parser it builds on: when receiver
/// types or field declarations cannot be recovered the access is simply not
/// indexed.  A missed access weakens a finding; a fabricated one manufactures
/// it — the index always prefers the former.

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/callgraph.hpp"

namespace tsce::analyze {

enum class AccessKind {
  kRead,      ///< plain load (incl. reads feeding a larger expression)
  kWrite,     ///< plain store: =, compound assignment, ++/--
  kAtomicOp,  ///< member call from the std::atomic vocabulary (.load, .store…)
  kCall,      ///< any other member call (mutation-unknown)
};

/// One member access site.
struct FieldAccess {
  std::string cls;    ///< owning class of the field
  std::string field;  ///< field name
  std::size_t file = 0;
  std::size_t tok_idx = 0;
  std::size_t line = 0;
  std::size_t node = CallGraph::npos;  ///< enclosing call-graph node
  AccessKind kind = AccessKind::kRead;
  bool in_ctor = false;         ///< enclosing function is a ctor/dtor of cls
  bool in_pool_lambda = false;  ///< site lies inside a pool-submitted lambda
  /// Lock keys lexically held at the site (the enclosing function's lock
  /// scopes; inside a pool lambda, only locks acquired within the lambda).
  std::vector<std::string> local_locks;
};

/// Declared properties of one data member.
struct FieldInfo {
  std::string type;       ///< joined type spelling
  std::string type_last;  ///< last type identifier (the discriminator)
  bool is_atomic = false;
  bool is_mutex = false;  ///< mutex / shared_mutex / condition_variable family
  bool is_thread_local = false;
  std::size_t file = 0;
  std::size_t line = 0;
};

struct AccessIndex {
  /// class -> field -> declared properties.
  std::map<std::string, std::map<std::string, FieldInfo>> fields;
  /// Every indexed access, in (file, token) order.
  std::vector<FieldAccess> accesses;
  /// Per call-graph node: reachable from a pool-submitted lambda?
  std::vector<bool> pool_reachable;
  /// Per call-graph node: must-hold lock keys at function entry.
  std::vector<std::set<std::string>> entry_locks;

  /// entry_locks ∪ local_locks for one access — the set the rules test.
  [[nodiscard]] std::set<std::string> lockset_of(const FieldAccess& a) const;
};

/// Stable identity key for a spelled mutex access chain (shared with the
/// lock-order-cycle rule): member chains with a typed receiver key on the
/// class, bare members on the enclosing class, everything else on the file —
/// so two unrelated `mu`s never merge.
[[nodiscard]] std::string mutex_key(const FileUnit& unit, const FunctionDef& def,
                                    const std::string& chain, std::size_t at);

[[nodiscard]] AccessIndex build_access_index(const std::vector<FileUnit>& units,
                                             const CallGraph& graph);

}  // namespace tsce::analyze
