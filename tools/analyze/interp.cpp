#include "analyze/interp.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "analyze/accesses.hpp"

namespace tsce::analyze {

namespace {

using TK = TokenKind;

constexpr std::size_t npos = CallGraph::npos;

bool is_pool_call(const std::string& name) {
  return name == "submit" || name == "parallel_for" ||
         name == "for_each_index" || name == "for_each";
}

/// Does any token in [begin, end] spell \p ident (comments excluded)?
bool range_has_ident(const TokenStream& ts, std::size_t begin, std::size_t end,
                     std::string_view ident) {
  const auto& toks = ts.tokens();
  for (std::size_t k = begin; k <= end && k < toks.size(); ++k) {
    if (toks[k].kind == TK::kIdentifier && toks[k].text == ident) return true;
  }
  return false;
}

/// Any definition body of \p node contains a Rng::stream / .stream(...)
/// derivation — the function seeds its own per-item streams.
bool derives_stream(const std::vector<FileUnit>& units,
                    const CallGraph::Node& node) {
  return std::any_of(
      node.defs.begin(), node.defs.end(), [&](const FunctionDef& def) {
        return range_has_ident(units[def.file].ts, def.body_begin + 1,
                               def.body_end - 1, "stream");
      });
}

/// Does a definition's parameter list take a util::Rng by reference or
/// pointer?  Signature tokens run from the '(' after the name to its match.
bool takes_rng_ref(const FileUnit& unit, const FunctionDef& def) {
  const TokenStream& ts = unit.ts;
  const std::size_t open = def.name_idx + 1;
  if (!ts.at(open).punct("(")) return false;
  const std::size_t close = ts.match_forward(open);
  for (std::size_t k = open + 1; k < close && k < ts.size(); ++k) {
    if (!ts.at(k).ident("Rng")) continue;
    const std::size_t after = ts.next_code(k);
    if (after < ts.size() &&
        (ts.at(after).punct("&") || ts.at(after).punct("*"))) {
      return true;
    }
  }
  return false;
}

// --- transitive-hot-alloc ---------------------------------------------------

void rule_transitive_hot_alloc(const std::vector<FileUnit>& units,
                               const CallGraph& g,
                               std::vector<Finding>& out) {
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    if (g.nodes()[i].hot) roots.push_back(i);
  }
  if (roots.empty()) return;
  const std::vector<std::size_t> parent = g.reach_from(roots);

  for (std::size_t node = 0; node < g.nodes().size(); ++node) {
    if (parent[node] == npos) continue;
    const CallGraph::Node& nd = g.nodes()[node];
    // The annotated frame itself is the per-file no-alloc-hot rule's job.
    if (nd.hot) continue;
    const std::string path = g.path_to(parent, node);
    const std::string suffix = "' is reachable from a TSCE_HOT frame (" +
                               path +
                               "); the whole hot path must stay "
                               "allocation-free";

    for (const FunctionDef& def : nd.defs) {
      const FileUnit& unit = units[def.file];
      const TokenStream& ts = unit.ts;
      const auto& toks = ts.tokens();
      for (std::size_t i = def.body_begin + 1; i < def.body_end; ++i) {
        // Skip allocation sites that belong to a nested definition (a local
        // struct's methods reach this rule through their own node).
        if (toks[i].kind != TK::kIdentifier) continue;
        if (toks[i].text == "new") {
          if (ts.at(ts.prev_code(i)).ident("operator")) continue;
          if (g.enclosing(def.file, i) != node) continue;
          out.push_back({unit.rel, toks[i].line, "transitive-hot-alloc",
                         "new-expression: '" + nd.qualified + suffix,
                         {}});
        } else if (toks[i].text == "make_unique" ||
                   toks[i].text == "make_shared") {
          std::size_t k = ts.next_code(i);
          if (k < toks.size() && ts.at(k).punct("<")) {
            k = ts.next_code(ts.match_forward(k));
          }
          if (k < toks.size() && ts.at(k).punct("(") &&
              g.enclosing(def.file, i) == node) {
            out.push_back({unit.rel, toks[i].line, "transitive-hot-alloc",
                           "'" + toks[i].text + "': '" + nd.qualified + suffix,
                           {}});
          }
        }
      }
      for (const Call& call : unit.structure.calls) {
        if (call.name_idx <= def.body_begin || call.name_idx >= def.body_end) {
          continue;
        }
        if ((call.name != "push_back" && call.name != "emplace_back") ||
            call.receiver.empty()) {
          continue;
        }
        const bool reserved = std::any_of(
            unit.structure.calls.begin(), unit.structure.calls.end(),
            [&](const Call& c) {
              return c.name == "reserve" && c.receiver == call.receiver;
            });
        if (!reserved && g.enclosing(def.file, call.name_idx) == node) {
          out.push_back({unit.rel, toks[call.name_idx].line,
                         "transitive-hot-alloc",
                         "'" + call.receiver + "." + call.name +
                             "' without a same-file reserve(): '" +
                             nd.qualified + suffix,
                         {}});
        }
      }
    }
  }
}

// --- lock-order-cycle -------------------------------------------------------

/// One lock acquisition inside a definition, with its resolved mutex key.
struct Acquisition {
  std::string key;
  std::string chain;  ///< spelled access chain, for instance disambiguation
  std::size_t decl_idx = 0;
  std::size_t scope_end = 0;
  std::size_t file = 0;
  std::size_t line = 0;
};

// mutex_key (the chain -> stable identity resolution shared with the
// concurrency tier's lockset dataflow) lives in accesses.{hpp,cpp}.

void rule_lock_order_cycle(const std::vector<FileUnit>& units,
                           const CallGraph& g, std::vector<Finding>& out) {
  // Acquisitions per node, in definition order.
  std::vector<std::vector<Acquisition>> acquired(g.nodes().size());
  for (std::size_t node = 0; node < g.nodes().size(); ++node) {
    for (const FunctionDef& def : g.nodes()[node].defs) {
      const FileUnit& unit = units[def.file];
      for (const LockScope& lock : unit.structure.locks) {
        if (lock.decl_idx <= def.body_begin || lock.decl_idx >= def.body_end) {
          continue;
        }
        if (g.enclosing(def.file, lock.decl_idx) != node) continue;
        for (const std::string& chain : lock.mutexes) {
          acquired[node].push_back({mutex_key(unit, def, chain, lock.decl_idx),
                                    chain, lock.decl_idx, lock.scope_end,
                                    def.file, lock.line});
        }
      }
    }
  }

  // Fixpoint: every mutex key acquired by a node or anything it can call.
  // SCCs arrive callees-first, so one sweep converges.
  std::vector<std::set<std::string>> all_keys(g.nodes().size());
  for (const std::vector<std::size_t>& scc : g.sccs()) {
    std::set<std::string> keys;
    for (std::size_t m : scc) {
      for (const Acquisition& a : acquired[m]) keys.insert(a.key);
      for (const CallEdge& e : g.nodes()[m].edges) {
        keys.insert(all_keys[e.callee].begin(), all_keys[e.callee].end());
      }
    }
    for (std::size_t m : scc) all_keys[m] = keys;
  }

  // Order edges: key A held while key B acquired (in-function nesting or
  // through a call made inside A's extent).
  struct OrderEdge {
    std::string from, to;
    std::size_t file = 0;
    std::size_t line = 0;
  };
  std::vector<OrderEdge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      std::size_t file, std::size_t line) {
    const bool dup = std::any_of(
        edges.begin(), edges.end(), [&](const OrderEdge& e) {
          return e.from == from && e.to == to;
        });
    if (!dup) edges.push_back({from, to, file, line});
  };
  for (std::size_t node = 0; node < g.nodes().size(); ++node) {
    for (const Acquisition& a : acquired[node]) {
      for (const Acquisition& b : acquired[node]) {
        if (b.file != a.file || b.decl_idx <= a.decl_idx ||
            b.decl_idx >= a.scope_end) {
          continue;
        }
        // Two same-key acquisitions with different spellings are almost
        // always distinct instances (hand-over-hand per-object locking);
        // identical spellings nested in one function are a real
        // re-acquisition.
        if (a.key == b.key && a.chain != b.chain) continue;
        add_edge(a.key, b.key, b.file, b.line);
      }
      for (const CallEdge& call : g.nodes()[node].edges) {
        if (call.file != a.file || call.tok_idx <= a.decl_idx ||
            call.tok_idx >= a.scope_end) {
          continue;
        }
        for (const std::string& key : all_keys[call.callee]) {
          add_edge(a.key, key, call.file, call.line);
        }
      }
    }
  }

  // Cycle = an edge whose head already reaches its tail.
  std::map<std::string, std::vector<const OrderEdge*>> adj;
  for (const OrderEdge& e : edges) adj[e.from].push_back(&e);
  auto reaches = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen{from};
    std::vector<std::string> queue{from};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto it = adj.find(queue[head]);
      if (it == adj.end()) continue;
      for (const OrderEdge* e : it->second) {
        if (e->to == to) return true;
        if (seen.insert(e->to).second) queue.push_back(e->to);
      }
    }
    return false;
  };

  // Group cyclic edges by their unordered mutex pair/cycle set so one cycle
  // yields one finding, at its smallest (file, line) witness edge.
  std::map<std::string, const OrderEdge*> witness;
  for (const OrderEdge& e : edges) {
    const bool cyclic = e.from == e.to || reaches(e.to, e.from);
    if (!cyclic) continue;
    std::string group = e.from < e.to ? e.from + "|" + e.to
                                      : e.to + "|" + e.from;
    const auto it = witness.find(group);
    if (it == witness.end() ||
        std::tie(units[e.file].rel, e.line) <
            std::tie(units[it->second->file].rel, it->second->line)) {
      witness[group] = &e;
    }
  }
  for (const auto& [group, e] : witness) {
    std::string message;
    if (e->from == e->to) {
      message = "potential self-deadlock: '" + e->from +
                "' is acquired again while already held on this path";
    } else {
      // Name the counter-edge so the report shows both halves of the cycle.
      const OrderEdge* back = nullptr;
      for (const OrderEdge& other : edges) {
        if (other.from == e->to && reaches(other.to, e->from)) {
          back = &other;
          break;
        }
      }
      message = "potential deadlock: lock-order cycle between '" + e->from +
                "' and '" + e->to + "'; this path acquires '" + e->to +
                "' while holding '" + e->from + "'";
      if (back != nullptr) {
        message += ", the opposite order is taken at " +
                   units[back->file].rel + ":" + std::to_string(back->line);
      }
    }
    out.push_back(
        {units[e->file].rel, e->line, "lock-order-cycle", message, {}});
  }
}

// --- rng-stream-escape ------------------------------------------------------

void rule_rng_stream_escape(const std::vector<FileUnit>& units,
                            const CallGraph& g, std::vector<Finding>& out) {
  // Roots: functions called from inside a lambda handed to a ThreadPool
  // entry point, when the lambda body does not derive per-item streams.
  std::vector<std::size_t> roots;
  std::map<std::size_t, std::string> root_site;
  for (std::size_t f = 0; f < units.size(); ++f) {
    if (!units[f].in_graph) continue;
    const FileUnit& unit = units[f];
    for (const Call& call : unit.structure.calls) {
      if (!is_pool_call(call.name)) continue;
      const std::size_t caller = g.enclosing(f, call.name_idx);
      if (caller == npos) continue;
      for (const Lambda& lam : unit.structure.lambdas) {
        if (lam.intro_idx <= call.open_idx || lam.intro_idx >= call.close_idx) {
          continue;
        }
        if (range_has_ident(unit.ts, lam.body_begin + 1, lam.body_end - 1,
                            "stream")) {
          continue;  // the submission site derives per-item streams
        }
        for (const CallEdge& e : g.nodes()[caller].edges) {
          if (e.file != f || e.tok_idx <= lam.body_begin ||
              e.tok_idx >= lam.body_end) {
            continue;
          }
          if (root_site.find(e.callee) == root_site.end()) {
            roots.push_back(e.callee);
            root_site[e.callee] =
                unit.rel + ":" + std::to_string(e.line);
          }
        }
      }
    }
  }
  if (roots.empty()) return;

  // BFS, stopping at functions that derive their own streams: what they pass
  // further down is per-item by construction.
  std::vector<std::size_t> parent(g.nodes().size(), npos);
  std::vector<std::size_t> queue;
  for (std::size_t r : roots) {
    if (parent[r] == npos && !derives_stream(units, g.nodes()[r])) {
      parent[r] = r;
      queue.push_back(r);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t u = queue[head];
    for (const CallEdge& e : g.nodes()[u].edges) {
      if (parent[e.callee] != npos) continue;
      if (derives_stream(units, g.nodes()[e.callee])) continue;
      parent[e.callee] = u;
      queue.push_back(e.callee);
    }
  }

  for (std::size_t node = 0; node < g.nodes().size(); ++node) {
    if (parent[node] == npos) continue;
    const CallGraph::Node& nd = g.nodes()[node];
    for (const FunctionDef& def : nd.defs) {
      if (!takes_rng_ref(units[def.file], def)) continue;
      std::size_t root = node;
      while (parent[root] != root) root = parent[root];
      out.push_back(
          {units[def.file].rel, def.line, "rng-stream-escape",
           "'" + nd.qualified +
               "' takes a util::Rng by reference and is reached from a "
               "ThreadPool submission site at " +
               root_site[root] + " (" + g.path_to(parent, node) +
               ") with no Rng::stream derivation on the path; results depend "
               "on the thread schedule",
           {}});
      break;  // one finding per function, not per overload definition
    }
  }
}

// --- hot-path-virtual -------------------------------------------------------

void rule_hot_path_virtual(const std::vector<FileUnit>& units,
                           const CallGraph& g, std::vector<Finding>& out) {
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    if (g.nodes()[i].hot) roots.push_back(i);
  }
  if (roots.empty()) return;
  const std::vector<std::size_t> parent = g.reach_from(roots);
  const auto& virtuals = g.virtual_methods();

  for (std::size_t node = 0; node < g.nodes().size(); ++node) {
    if (parent[node] == npos) continue;
    const CallGraph::Node& nd = g.nodes()[node];
    const std::string path = g.path_to(parent, node);
    for (const FunctionDef& def : nd.defs) {
      const FileUnit& unit = units[def.file];
      for (const Call& call : unit.structure.calls) {
        if (call.name_idx <= def.body_begin || call.name_idx >= def.body_end ||
            call.qualified) {
          continue;
        }
        if (g.enclosing(def.file, call.name_idx) != node) continue;
        const std::size_t line = unit.ts.at(call.name_idx).line;
        const auto it = virtuals.find(call.name);
        if (it != virtuals.end()) {
          // `recv.method(...)` on a receiver typed as a class declaring the
          // method virtual, or an unqualified call to the caller's own
          // virtual — both dispatch through the vtable.
          std::string cls;
          if (!call.receiver.empty()) {
            cls = unit.structure.type_of(call.receiver, call.name_idx);
          } else {
            cls = def.class_name;
          }
          const bool is_virtual =
              !cls.empty() && std::find(it->second.begin(), it->second.end(),
                                        cls) != it->second.end();
          if (is_virtual) {
            out.push_back(
                {unit.rel, line, "hot-path-virtual",
                 "virtual dispatch of '" + cls + "::" + call.name +
                     "' inside TSCE_HOT-reachable code (" + path +
                     "); devirtualize or hoist the dispatch off the hot path",
                 {}});
            continue;
          }
        }
        if (call.receiver.empty() &&
            unit.structure.type_of(call.name, call.name_idx) == "function") {
          out.push_back(
              {unit.rel, line, "hot-path-virtual",
               "call through std::function '" + call.name +
                   "' inside TSCE_HOT-reachable code (" + path +
                   "); use a direct call or a template parameter on the hot "
                   "path",
               {}});
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_interprocedural_rules(
    const std::vector<FileUnit>& units, const CallGraph& graph,
    std::vector<RuleStat>* stats) {
  std::vector<Finding> out;
  const auto timed = [&](const char* name, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn(units, graph, out);
    if (stats != nullptr) {
      stats->push_back({name, std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count()});
    }
  };
  timed("transitive-hot-alloc", rule_transitive_hot_alloc);
  timed("lock-order-cycle", rule_lock_order_cycle);
  timed("rng-stream-escape", rule_rng_stream_escape);
  timed("hot-path-virtual", rule_hot_path_virtual);
  return out;
}

}  // namespace tsce::analyze
