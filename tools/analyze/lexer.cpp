#include "analyze/lexer.hpp"

#include <array>
#include <cctype>

namespace tsce::analyze {

namespace {

bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuation, longest first within each leading character.
constexpr std::array<std::string_view, 36> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "<=>",                    // three chars
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",  // two chars
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*", "##",
    // single chars that matter are handled by the fallback below; the rest
    // of the table exists so longest-match stays a simple linear scan.
    "<", ">", "=", "!", "&", "|", "+", "-", ".",
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };
  auto count_lines = [&](std::string_view text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: only when '#' is the first non-space character
    // on its line; swallow backslash continuations into one token.
    if (c == '#') {
      std::size_t bol = i;
      while (bol > 0 && src[bol - 1] != '\n') --bol;
      bool first_on_line = true;
      for (std::size_t k = bol; k < i; ++k) {
        if (std::isspace(static_cast<unsigned char>(src[k])) == 0) {
          first_on_line = false;
          break;
        }
      }
      if (first_on_line) {
        const std::size_t start = i;
        const std::size_t start_line = line;
        while (i < n) {
          if (src[i] == '\n') {
            // Continuation if the previous non-CR character is a backslash.
            std::size_t back = i;
            while (back > start && (src[back - 1] == '\r')) --back;
            if (back > start && src[back - 1] == '\\') {
              ++line;
              ++i;
              continue;
            }
            break;
          }
          ++i;
        }
        out.push_back({TokenKind::kPreproc,
                       std::string(src.substr(start, i - start)), start_line});
        continue;
      }
      out.push_back({TokenKind::kPunct, "#", line});
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.push_back({TokenKind::kComment, std::string(src.substr(start, i - start)),
                     line});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i < n ? i + 2 : n;
      out.push_back({TokenKind::kComment, std::string(src.substr(start, i - start)),
                     start_line});
      continue;
    }
    // Raw string literal (with optional encoding prefix).
    {
      std::size_t p = i;
      if (src.substr(p, 2) == "u8") p += 2;
      else if (p < n && (src[p] == 'u' || src[p] == 'U' || src[p] == 'L')) p += 1;
      if (p < n && src[p] == 'R' && p + 1 < n && src[p + 1] == '"') {
        const std::size_t start = i;
        const std::size_t start_line = line;
        std::size_t d = p + 2;  // delimiter start
        std::size_t de = d;
        while (de < n && src[de] != '(') ++de;
        const std::string closer =
            ")" + std::string(src.substr(d, de - d)) + "\"";
        std::size_t end = src.find(closer, de);
        end = end == std::string_view::npos ? n : end + closer.size();
        count_lines(src.substr(start, end - start));
        out.push_back({TokenKind::kString,
                       std::string(src.substr(start, end - start)), start_line});
        i = end;
        continue;
      }
    }
    // String / char literal (skipping escapes).
    if (c == '"' || c == '\'') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i < n ? i + 1 : n;
      out.push_back({quote == '"' ? TokenKind::kString : TokenKind::kChar,
                     std::string(src.substr(start, i - start)), start_line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.push_back({TokenKind::kIdentifier,
                     std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Number: leading digit, or '.' followed by a digit.  Consume the
    // pp-number shape (alnum, quotes as digit separators, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                    src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.push_back({TokenKind::kNumber, std::string(src.substr(start, i - start)),
                     line});
      continue;
    }
    // Punctuation, longest match.
    std::string_view matched;
    for (std::string_view p : kMultiPunct) {
      if (src.substr(i, p.size()) == p) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = src.substr(i, 1);
    out.push_back({TokenKind::kPunct, std::string(matched), line});
    i += matched.size();
  }

  out.push_back({TokenKind::kEof, "", line});
  return out;
}

std::size_t TokenStream::next_code(std::size_t i) const noexcept {
  for (std::size_t k = i + 1; k < tokens_.size(); ++k) {
    const TokenKind kind = tokens_[k].kind;
    if (kind != TokenKind::kComment && kind != TokenKind::kPreproc) return k;
  }
  return tokens_.size();
}

std::size_t TokenStream::prev_code(std::size_t i) const noexcept {
  for (std::size_t k = i; k-- > 0;) {
    const TokenKind kind = tokens_[k].kind;
    if (kind != TokenKind::kComment && kind != TokenKind::kPreproc) return k;
  }
  return tokens_.size();
}

std::size_t TokenStream::match_forward(std::size_t i) const noexcept {
  if (i >= tokens_.size()) return tokens_.size();
  const std::string& open = tokens_[i].text;
  std::string close;
  if (open == "(") close = ")";
  else if (open == "[") close = "]";
  else if (open == "{") close = "}";
  else if (open == "<") close = ">";
  else return tokens_.size();
  int depth = 0;
  for (std::size_t k = i; k < tokens_.size(); ++k) {
    const Token& t = tokens_[k];
    if (t.kind != TokenKind::kPunct) continue;
    if (open == "<" && (t.text == ";" || t.text == "{" || t.text == "}")) {
      return tokens_.size();  // not a template argument list after all
    }
    if (t.text == open) ++depth;
    else if (t.text == close && --depth == 0) return k;
    else if (open == "<" && t.text == ">>" && depth > 0) {
      depth -= 2;
      if (depth <= 0) return k;
    }
  }
  return tokens_.size();
}

std::size_t TokenStream::match_backward(std::size_t i) const noexcept {
  if (i >= tokens_.size()) return tokens_.size();
  const std::string& close = tokens_[i].text;
  std::string open;
  if (close == ")") open = "(";
  else if (close == "]") open = "[";
  else if (close == "}") open = "{";
  else if (close == ">") open = "<";
  else return tokens_.size();
  int depth = 0;
  for (std::size_t k = i + 1; k-- > 0;) {
    const Token& t = tokens_[k];
    if (t.kind != TokenKind::kPunct) continue;
    if (close == ">" && (t.text == ";" || t.text == "{" || t.text == "}")) {
      return tokens_.size();  // not a template argument list after all
    }
    if (t.text == close) ++depth;
    else if (t.text == open && --depth == 0) return k;
    else if (close == ">" && t.text == "<<" && depth > 0) {
      return tokens_.size();  // stream insertion, not nested template args
    }
  }
  return tokens_.size();
}

}  // namespace tsce::analyze
