/// \file scopes.hpp
/// Lightweight declaration & scope parser over the tsce_analyze token stream.
///
/// This is deliberately not a C++ parser: it recovers just the structure the
/// determinism rules need — variable declarations with their (textual) types
/// and enclosing-scope extents, range-for statements, lambda expressions with
/// parsed capture lists, call expressions with their receiver chain, and
/// RAII lock guard scopes.  Heuristic by design: it must degrade to "no
/// structure found" (never a crash or a spurious parse) on code it does not
/// understand, because the analyzer runs over every TU in the repo.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace tsce::analyze {

/// A declared name: `std::unordered_map<K, V> seen;` records
/// {name "seen", type "std::unordered_map<K,V>", type_last "unordered_map"}.
struct Decl {
  std::string name;
  std::string type;       ///< joined spelling of the type tokens
  std::string type_last;  ///< last type identifier — the rule discriminator
  std::size_t name_idx = 0;   ///< token index of the declared name
  std::size_t scope_end = 0;  ///< token index of the enclosing '}' (or EOF)
};

/// `for (auto& kv : table) { ... }` — body token range is [body_begin,
/// body_end] inclusive of the braces (or the single statement).
struct RangeFor {
  std::size_t for_idx = 0;
  std::size_t range_begin = 0;  ///< first token of the range expression
  std::size_t range_end = 0;    ///< last token of the range expression
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<std::string> loop_vars;  ///< declared loop variable(s)
};

struct Capture {
  std::string name;     ///< empty for a default capture
  bool by_ref = false;  ///< & or &name (init-captures keep the name)
  bool is_default = false;
};

struct Lambda {
  std::size_t intro_idx = 0;  ///< token index of the '['
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<Capture> captures;
};

/// `obj->method(arg...)` records {name "method", receiver "obj"}.
struct Call {
  std::string name;
  std::string receiver;  ///< empty for a free call; last id before . / ->
  bool qualified = false;  ///< preceded by :: (e.g. ThreadPool::submit)
  std::size_t name_idx = 0;
  std::size_t open_idx = 0;   ///< '('
  std::size_t close_idx = 0;  ///< matching ')'
};

/// A lock_guard / unique_lock / scoped_lock declaration and the extent of
/// the scope it protects: declaration through the enclosing '}', or through
/// the first `<guard>.unlock()` / `<guard>.release()` call when the code
/// drops the lock early (the extent is what the analyzer treats as "held").
/// `mutexes` records each constructor argument's spelled access chain
/// (`mu`, `impl_.mu`, `g_impl.mu`) — scoped_lock may name several.
struct LockScope {
  std::size_t decl_idx = 0;
  std::size_t scope_end = 0;
  std::size_t line = 0;
  std::vector<std::string> mutexes;
};

struct FileStructure {
  std::vector<Decl> decls;
  std::vector<RangeFor> range_fors;
  std::vector<Lambda> lambdas;
  std::vector<Call> calls;
  std::vector<LockScope> locks;

  /// Declared type discriminator for \p name, searching declarations whose
  /// scope covers token \p at (innermost wins); empty when unknown.
  [[nodiscard]] std::string type_of(const std::string& name,
                                    std::size_t at) const;
};

[[nodiscard]] FileStructure parse_structure(const TokenStream& ts);

}  // namespace tsce::analyze
