/// \file concurrency.hpp
/// The concurrency dataflow tier of tsce_analyze: four RacerD-style static
/// race rules written against the member-field access index and the
/// interprocedural lockset dataflow (accesses.hpp):
///
///   guarded-by-inconsistency  a field protected by lock L at >= 80% of its
///                             access sites but touched lock-free elsewhere —
///                             the unguarded site is reported with the
///                             majority-witness sites spelled out.  Requires
///                             at least one non-constructor write site: a
///                             field that is immutable after construction
///                             cannot race, however often it is read under a
///                             lock held for its neighbors;
///   unguarded-shared-write    a plain write with an empty lockset to a field
///                             that is accessed from both pool-reachable and
///                             main-thread-only code (std::atomic and
///                             thread-local fields exempt).  Fires only on
///                             classes with synchronization evidence (a
///                             mutex/atomic member or a locked access site):
///                             a class that never synchronizes is per-task
///                             data moved between threads by ownership
///                             transfer, not shared state;
///   atomic-plain-mix          one field accessed through atomic member calls
///                             (.load/.store/.fetch_*) in some places and
///                             through plain stores in others;
///   lock-scope-leak           a lock handle returned or std::move'd out of
///                             the scope the analyzer credited it to, which
///                             would silently poison every lockset computed
///                             from that scope.
///
/// Findings come back raw; analyze_project routes them through each file's
/// suppression list before they become diagnostics.

#pragma once

#include <string>
#include <vector>

#include "analyze/accesses.hpp"
#include "analyze/callgraph.hpp"
#include "analyze/rules.hpp"

namespace tsce::analyze {

[[nodiscard]] std::vector<Finding> run_concurrency_rules(
    const std::vector<FileUnit>& units, const CallGraph& graph,
    const AccessIndex& index, std::vector<RuleStat>* stats);

/// The guarded-by inference report: one JSON document listing, per field with
/// at least one indexed non-constructor access, the best-supported lock key,
/// its confidence (guarded sites / total sites), and the partition the field
/// is touched from.  CI uploads this next to the SARIF artifact.
[[nodiscard]] std::string guarded_by_report_json(
    const std::vector<FileUnit>& units, const AccessIndex& index);

}  // namespace tsce::analyze
