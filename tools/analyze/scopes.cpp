#include "analyze/scopes.hpp"

#include <algorithm>
#include <array>

namespace tsce::analyze {

namespace {

using TK = TokenKind;

/// Keywords that end a backward type scan — `return foo;` must not read
/// "return" as foo's type.
constexpr std::array<std::string_view, 19> kNotTypeHeads = {
    "return",      "new",      "delete",           "throw",
    "case",        "goto",     "else",             "do",
    "while",       "if",       "switch",           "co_return",
    "co_await",    "sizeof",   "static_cast",      "dynamic_cast",
    "reinterpret_cast", "const_cast", "decltype"};

bool is_not_type_head(const std::string& s) {
  return std::find(kNotTypeHeads.begin(), kNotTypeHeads.end(), s) !=
         kNotTypeHeads.end();
}

bool is_type_modifier(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "static" || s == "inline" ||
         s == "mutable" || s == "volatile" || s == "typename" || s == "auto" ||
         s == "thread_local";
}

}  // namespace

std::string FileStructure::type_of(const std::string& name,
                                   std::size_t at) const {
  const Decl* best = nullptr;
  for (const Decl& d : decls) {
    if (d.name != name || d.name_idx > at || d.scope_end < at) continue;
    // Innermost scope = latest declaration point among those covering `at`.
    if (best == nullptr || d.name_idx > best->name_idx) best = &d;
  }
  return best != nullptr ? best->type_last : std::string();
}

FileStructure parse_structure(const TokenStream& ts) {
  FileStructure out;
  const auto& toks = ts.tokens();
  const std::size_t n = toks.size();

  // --- brace scope stack: maps each declaration to its enclosing '}' -------
  struct OpenScope {
    std::vector<std::size_t> decl_indices;
    std::vector<std::size_t> lock_indices;
  };
  std::vector<OpenScope> scope_stack;

  auto close_scope = [&](std::size_t close_idx) {
    if (scope_stack.empty()) return;
    for (std::size_t di : scope_stack.back().decl_indices) {
      out.decls[di].scope_end = close_idx;
    }
    for (std::size_t li : scope_stack.back().lock_indices) {
      out.locks[li].scope_end = close_idx;
    }
    scope_stack.pop_back();
  };

  // --- declaration scan: `Type<...> name` followed by = ; { ( or , ---------
  // Walks backward from a candidate name over the type spelling; records the
  // decl when a plausible type remains and the scan hit a statement boundary.
  auto try_decl = [&](std::size_t name_at) -> bool {
    const Token& name_tok = toks[name_at];
    if (name_tok.kind != TK::kIdentifier || is_not_type_head(name_tok.text)) {
      return false;
    }
    std::string type_last;
    std::vector<std::string> type_parts;
    std::size_t k = ts.prev_code(name_at);
    bool expect_type_id = true;  // next backward token may name the type
    while (k < n) {
      const Token& t = toks[k];
      if (t.kind == TK::kPunct &&
          (t.text == "&" || t.text == "&&" || t.text == "*")) {
        k = ts.prev_code(k);
        continue;
      }
      if (t.kind == TK::kPunct && t.text == ">") {
        const std::size_t open = ts.match_backward(k);
        if (open >= n) return false;
        k = ts.prev_code(open);
        expect_type_id = true;
        continue;
      }
      if (t.kind == TK::kPunct && t.text == "::") {
        k = ts.prev_code(k);
        expect_type_id = true;
        continue;
      }
      if (t.kind == TK::kIdentifier) {
        if (is_not_type_head(t.text)) return false;
        if (!expect_type_id && !is_type_modifier(t.text)) break;
        if (type_last.empty() && !is_type_modifier(t.text)) type_last = t.text;
        type_parts.push_back(t.text);
        expect_type_id = is_type_modifier(t.text);
        k = ts.prev_code(k);
        continue;
      }
      break;  // statement boundary or something that is not a type
    }
    if (type_last.empty()) {
      // `auto x = ...` has no concrete type spelling but is still a
      // declaration — the call-graph resolver must know the name is a local
      // (e.g. a lambda variable), not a free function.
      if (std::find(type_parts.begin(), type_parts.end(), "auto") ==
          type_parts.end()) {
        return false;
      }
      type_last = "auto";
    }
    // The token before the type must be a boundary, not an expression.
    if (k < n) {
      const Token& b = toks[k];
      const bool boundary =
          b.kind == TK::kPunct &&
          (b.text == ";" || b.text == "{" || b.text == "}" || b.text == "(" ||
           b.text == "," || b.text == ":" || b.text == ">");
      if (!boundary) return false;
    }
    std::string type;
    for (auto it = type_parts.rbegin(); it != type_parts.rend(); ++it) {
      if (!type.empty()) type += ' ';
      type += *it;
    }
    Decl d{name_tok.text, type, type_last, name_at, n - 1};
    out.decls.push_back(d);
    const std::size_t decl_index = out.decls.size() - 1;
    if (!scope_stack.empty()) {
      scope_stack.back().decl_indices.push_back(decl_index);
    }
    if (type_last == "lock_guard" || type_last == "unique_lock" ||
        type_last == "scoped_lock") {
      LockScope lock{name_at, n - 1, name_tok.line, {}};
      // Constructor arguments: each top-level argument's identifier chain,
      // member accesses joined with '.' (`impl_->mu` records as "impl_.mu").
      const std::size_t open = name_at + 1 < n ? name_at + 1 : name_at;
      if (toks[open].punct("(")) {
        const std::size_t close = ts.match_forward(open);
        std::string chain;
        for (std::size_t j = open + 1; j < close && j < n; ++j) {
          const Token& a = toks[j];
          if (a.kind == TK::kIdentifier) {
            chain += a.text;
          } else if (a.punct(".") || a.punct("->")) {
            chain += '.';
          } else if (a.punct(",")) {
            if (!chain.empty()) lock.mutexes.push_back(chain);
            chain.clear();
          }
          // std::adopt_lock and friends would be recorded as chains too;
          // harmless — rule code only compares chains against each other.
        }
        if (!chain.empty()) lock.mutexes.push_back(chain);
      }
      out.locks.push_back(std::move(lock));
      if (!scope_stack.empty()) {
        scope_stack.back().lock_indices.push_back(out.locks.size() - 1);
      }
    }
    return true;
  };

  // --- single forward pass --------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind == TK::kPunct && t.text == "{") {
      scope_stack.push_back({});
      continue;
    }
    if (t.kind == TK::kPunct && t.text == "}") {
      close_scope(i);
      continue;
    }

    // Range-for: for ( decl : range ) body
    if (t.ident("for")) {
      const std::size_t open = ts.next_code(i);
      if (open >= n || !toks[open].punct("(")) continue;
      const std::size_t close = ts.match_forward(open);
      if (close >= n) continue;
      // Top-level ':' inside the parens.
      std::size_t colon = n;
      int depth = 0;
      for (std::size_t k = open + 1; k < close; ++k) {
        const Token& p = toks[k];
        if (p.kind != TK::kPunct) continue;
        if (p.text == "(" || p.text == "[" || p.text == "{") ++depth;
        else if (p.text == ")" || p.text == "]" || p.text == "}") --depth;
        else if (p.text == ":" && depth == 0) {
          colon = k;
          break;
        }
      }
      if (colon >= n) continue;
      RangeFor rf;
      rf.for_idx = i;
      rf.range_begin = ts.next_code(colon);
      rf.range_end = ts.prev_code(close);
      // Loop variables: identifiers of the structured binding / decl, i.e.
      // every identifier between '(' and ':' that is not a type keyword.
      std::vector<std::string> ids;
      for (std::size_t k = open + 1; k < colon; ++k) {
        if (toks[k].kind == TK::kIdentifier && !is_type_modifier(toks[k].text)) {
          ids.push_back(toks[k].text);
        }
      }
      // `auto& [key, value]` keeps both; `const Foo& f` keeps only the last.
      const bool structured =
          ts.next_code(open) < colon &&
          std::any_of(toks.begin() + static_cast<std::ptrdiff_t>(open),
                      toks.begin() + static_cast<std::ptrdiff_t>(colon),
                      [](const Token& x) { return x.punct("["); });
      if (structured) {
        rf.loop_vars = ids;
      } else if (!ids.empty()) {
        rf.loop_vars.push_back(ids.back());
      }
      const std::size_t after = ts.next_code(close);
      if (after < n && toks[after].punct("{")) {
        rf.body_begin = after;
        rf.body_end = ts.match_forward(after);
      } else {
        rf.body_begin = after;
        std::size_t k = after;
        int d2 = 0;
        while (k < n) {
          const Token& p = toks[k];
          if (p.kind == TK::kPunct) {
            if (p.text == "(" || p.text == "{" || p.text == "[") ++d2;
            if (p.text == ")" || p.text == "}" || p.text == "]") --d2;
            if (p.text == ";" && d2 == 0) break;
          }
          ++k;
        }
        rf.body_end = k;
      }
      if (rf.body_end < n) out.range_fors.push_back(rf);
      continue;
    }

    // Lambda introducer: '[' not preceded by a value expression.
    if (t.punct("[")) {
      const std::size_t prev = ts.prev_code(i > 0 ? i : 0);
      bool subscript = false;
      if (prev < n && i > 0) {
        const Token& p = toks[prev];
        subscript = (p.kind == TK::kIdentifier && !is_not_type_head(p.text) &&
                     p.text != "auto") ||
                    p.kind == TK::kNumber || p.kind == TK::kString ||
                    (p.kind == TK::kPunct &&
                     (p.text == "]" || p.text == ")" || p.text == ">"));
      }
      if (subscript) continue;
      const std::size_t intro_close = ts.match_forward(i);
      if (intro_close >= n) continue;
      // Find the body '{': allow (params), specifiers, -> ret between.
      std::size_t k = ts.next_code(intro_close);
      if (k < n && toks[k].punct("(")) k = ts.next_code(ts.match_forward(k));
      std::size_t guard = 0;
      while (k < n && !toks[k].punct("{") && !toks[k].punct(";") &&
             guard++ < 16) {
        k = ts.next_code(k);
      }
      if (k >= n || !toks[k].punct("{")) continue;
      Lambda lam;
      lam.intro_idx = i;
      lam.body_begin = k;
      lam.body_end = ts.match_forward(k);
      if (lam.body_end >= n) continue;
      // Parse the capture list.
      std::size_t c = ts.next_code(i);
      while (c < intro_close) {
        Capture cap;
        if (toks[c].punct("&")) {
          cap.by_ref = true;
          c = ts.next_code(c);
        } else if (toks[c].punct("=")) {
          cap.is_default = true;
          c = ts.next_code(c);
        }
        if (c < intro_close && toks[c].kind == TK::kIdentifier) {
          cap.name = toks[c].text;
          c = ts.next_code(c);
        } else if (cap.by_ref) {
          cap.is_default = true;
        }
        // Skip init-capture expressions and anything else to the ','.
        int d2 = 0;
        while (c < intro_close &&
               !(d2 == 0 && toks[c].punct(","))) {
          if (toks[c].punct("(") || toks[c].punct("[") || toks[c].punct("{")) ++d2;
          if (toks[c].punct(")") || toks[c].punct("]") || toks[c].punct("}")) --d2;
          c = ts.next_code(c);
        }
        if (c < intro_close) c = ts.next_code(c);  // past ','
        if (cap.by_ref || cap.is_default || !cap.name.empty()) {
          lam.captures.push_back(cap);
        }
      }
      out.lambdas.push_back(std::move(lam));
      // fall through: the '[' token needs no further handling
      continue;
    }

    // Call expression: identifier directly followed by '('.
    if (t.kind == TK::kIdentifier && !is_not_type_head(t.text)) {
      const std::size_t open = i + 1 < n ? i + 1 : i;
      if (toks[open].punct("(")) {
        const std::size_t close = ts.match_forward(open);
        if (close < n) {
          Call call;
          call.name = t.text;
          call.name_idx = i;
          call.open_idx = open;
          call.close_idx = close;
          const std::size_t prev = ts.prev_code(i);
          if (prev < n && toks[prev].kind == TK::kPunct) {
            if (toks[prev].text == "." || toks[prev].text == "->") {
              const std::size_t recv = ts.prev_code(prev);
              if (recv < n && toks[recv].kind == TK::kIdentifier) {
                call.receiver = toks[recv].text;
              }
            } else if (toks[prev].text == "::") {
              call.qualified = true;
              const std::size_t q = ts.prev_code(prev);
              if (q < n && toks[q].kind == TK::kIdentifier) {
                call.receiver = toks[q].text;
              }
            }
          }
          out.calls.push_back(std::move(call));
        }
      }
      // Also try this identifier as a declared name.  ')' covers the last
      // function parameter (`void f(util::Rng& rng)`).
      const std::size_t after = ts.next_code(i);
      if (after < n && toks[after].kind == TK::kPunct) {
        const std::string& a = toks[after].text;
        if (a == "=" || a == ";" || a == "{" || a == "(" || a == "," ||
            a == ")") {
          try_decl(i);
        }
      }
    }
  }

  while (!scope_stack.empty()) close_scope(n - 1);

  // Early release: `<guard>.unlock()` / `<guard>.release()` ends the held
  // extent at the call site, so rules do not treat code after a deliberate
  // drop (the worker-loop pattern: dequeue under lock, run unlocked) as
  // lock-covered.  unique_lock can relock afterwards; the truncation is
  // deliberately conservative in the rules' favor (shorter extent = fewer
  // findings, never a spurious one).
  for (LockScope& lock : out.locks) {
    const std::string& guard_name = toks[lock.decl_idx].text;
    for (const Call& call : out.calls) {
      if ((call.name == "unlock" || call.name == "release") &&
          call.receiver == guard_name && call.name_idx > lock.decl_idx &&
          call.name_idx < lock.scope_end) {
        lock.scope_end = call.name_idx;
        break;  // calls are in token order; the first drop wins
      }
    }
  }
  return out;
}

}  // namespace tsce::analyze
