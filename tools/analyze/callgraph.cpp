#include "analyze/callgraph.hpp"

#include <algorithm>
#include <array>
#include <set>

namespace tsce::analyze {

namespace {

using TK = TokenKind;

/// Keywords that look like `name(...)` but never head a function definition.
constexpr std::array<std::string_view, 16> kNotFunctionNames = {
    "if",       "for",      "while",    "switch",        "catch",
    "return",   "sizeof",   "alignof",  "alignas",       "decltype",
    "noexcept", "requires", "constexpr", "static_assert", "throw",
    "new"};

bool is_not_function_name(const std::string& s) {
  return std::find(kNotFunctionNames.begin(), kNotFunctionNames.end(), s) !=
         kNotFunctionNames.end();
}

/// Specifiers that may sit between a definition's `)` and its body `{`.
bool is_post_signature_specifier(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "volatile" || s == "&" || s == "&&" ||
         s == "throw" || s == "try";
}

/// One class/struct body on the context stack.
struct ClassContext {
  std::string name;
  std::size_t body_end;
};

/// Scans backward from a definition's name over its leading tokens (return
/// type, attributes, qualifier chain) looking for markers.  Stops at a
/// statement boundary; bounded so a pathological file cannot quadratic-scan.
struct LeadingMarkers {
  bool hot = false;
  bool is_virtual = false;
};

LeadingMarkers scan_leading(const TokenStream& ts, std::size_t name_idx) {
  LeadingMarkers m;
  std::size_t k = ts.prev_code(name_idx);
  std::size_t guard = 0;
  const std::size_t n = ts.size();
  while (k < n && guard++ < 48) {
    const Token& t = ts.at(k);
    if (t.kind == TK::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    if (t.ident("TSCE_HOT")) m.hot = true;
    if (t.ident("virtual")) m.is_virtual = true;
    if (t.punct(">")) {
      // Jump template argument lists in the return type as one step.
      const std::size_t open = ts.match_backward(k);
      if (open >= n) break;
      k = ts.prev_code(open);
      continue;
    }
    k = ts.prev_code(k);
  }
  return m;
}

/// Walks the tokens after a candidate signature's closing `)` and decides
/// whether a body follows.  Returns the token index of the body `{`, or npos
/// for declarations / non-definitions.  `saw_override` reports an `override`
/// specifier for the virtual-method index.
std::size_t find_body(const TokenStream& ts, std::size_t close_paren,
                      bool* saw_override) {
  const std::size_t n = ts.size();
  std::size_t k = ts.next_code(close_paren);
  std::size_t guard = 0;
  while (k < n && guard++ < 64) {
    const Token& t = ts.at(k);
    if (t.punct("{")) return k;
    if (t.punct(";") || t.punct("=") || t.punct(",") || t.punct(")")) {
      return CallGraph::npos;  // declaration, defaulted, or an expression
    }
    if (t.ident("override")) *saw_override = true;
    if (t.punct(":")) {
      // Constructor initializer list: identifier chains with `(...)` / `{...}`
      // initializers separated by commas; the first `{` after a complete
      // initializer (or a `...` pack expansion) is the body.
      std::size_t c = ts.next_code(k);
      std::size_t init_guard = 0;
      while (c < n && init_guard++ < 256) {
        const Token& it = ts.at(c);
        if (it.kind == TK::kIdentifier || it.punct("::") || it.punct("...")) {
          c = ts.next_code(c);
          continue;
        }
        if (it.punct("<")) {
          const std::size_t close = ts.match_forward(c);
          if (close >= n) return CallGraph::npos;
          c = ts.next_code(close);
          continue;
        }
        if (it.punct("(") || it.punct("{")) {
          const std::size_t close = ts.match_forward(c);
          if (close >= n) return CallGraph::npos;
          c = ts.next_code(close);
          if (c < n && ts.at(c).punct(",")) {
            c = ts.next_code(c);
            continue;
          }
          if (c < n && ts.at(c).punct("{")) return c;
          return CallGraph::npos;
        }
        return CallGraph::npos;
      }
      return CallGraph::npos;
    }
    if (is_post_signature_specifier(t.text) && t.kind == TK::kIdentifier) {
      k = ts.next_code(k);
      continue;
    }
    if (t.punct("&") || t.punct("&&")) {
      k = ts.next_code(k);
      continue;
    }
    if (t.punct("(") || t.punct("<") || t.punct("[")) {
      // noexcept(...), attribute [[...]], template args in a trailing type.
      const std::size_t close = ts.match_forward(k);
      if (close >= n) return CallGraph::npos;
      k = ts.next_code(close);
      continue;
    }
    if (t.punct("->")) {
      // Trailing return type: consume type tokens up to `{` or `;`.
      k = ts.next_code(k);
      continue;
    }
    if (t.kind == TK::kIdentifier || t.punct("::") || t.punct("*")) {
      k = ts.next_code(k);  // trailing-return type spelling
      continue;
    }
    return CallGraph::npos;
  }
  return CallGraph::npos;
}

}  // namespace

std::size_t CallGraph::find(const std::string& qualified) const {
  const auto it = by_name_.find(qualified);
  return it == by_name_.end() ? npos : it->second;
}

std::size_t CallGraph::enclosing(std::size_t file, std::size_t tok_idx) const {
  std::size_t best = npos;
  std::size_t best_span = static_cast<std::size_t>(-1);
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    for (const FunctionDef& def : nodes_[node].defs) {
      if (def.file != file || tok_idx <= def.body_begin ||
          tok_idx >= def.body_end) {
        continue;
      }
      const std::size_t span = def.body_end - def.body_begin;
      if (span < best_span) {
        best_span = span;
        best = node;
      }
    }
  }
  return best;
}

std::vector<std::size_t> CallGraph::reach_from(
    const std::vector<std::size_t>& roots) const {
  std::vector<std::size_t> parent(nodes_.size(), npos);
  std::vector<std::size_t> queue;
  for (std::size_t r : roots) {
    if (r < nodes_.size() && parent[r] == npos) {
      parent[r] = r;
      queue.push_back(r);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t u = queue[head];
    for (const CallEdge& e : nodes_[u].edges) {
      if (parent[e.callee] == npos) {
        parent[e.callee] = u;
        queue.push_back(e.callee);
      }
    }
  }
  return parent;
}

std::string CallGraph::path_to(const std::vector<std::size_t>& parents,
                               std::size_t node) const {
  std::vector<std::size_t> chain;
  std::size_t cur = node;
  while (cur < nodes_.size() && parents[cur] != npos && parents[cur] != cur &&
         chain.size() < 32) {
    chain.push_back(cur);
    cur = parents[cur];
  }
  chain.push_back(cur);
  std::string out;
  for (std::size_t k = chain.size(); k-- > 0;) {
    if (!out.empty()) out += " -> ";
    out += nodes_[chain[k]].qualified;
  }
  return out;
}

std::string CallGraph::to_dot() const {
  std::string dot = "digraph tsce_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  std::vector<std::size_t> hot_roots;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].hot) hot_roots.push_back(i);
  }
  const std::vector<std::size_t> hot_parent = reach_from(hot_roots);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    dot += "  n" + std::to_string(i) + " [label=\"" + node.qualified;
    if (!node.defs.empty()) {
      dot += "\\n" + std::to_string(node.defs.size()) + " def(s)";
    }
    dot += "\"";
    if (node.hot) {
      dot += ", style=filled, fillcolor=\"#ff8a65\"";
    } else if (hot_parent[i] != npos) {
      dot += ", style=filled, fillcolor=\"#ffe0b2\"";
    }
    dot += "];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::set<std::size_t> seen;
    for (const CallEdge& e : nodes_[i].edges) {
      if (!seen.insert(e.callee).second) continue;
      dot += "  n" + std::to_string(i) + " -> n" + std::to_string(e.callee) +
             ";\n";
    }
  }
  for (const auto& scc : sccs_) {
    if (scc.size() < 2) continue;
    dot += "  // SCC:";
    for (std::size_t m : scc) dot += " " + nodes_[m].qualified;
    dot += "\n";
  }
  dot += "}\n";
  return dot;
}

CallGraph build_call_graph(const std::vector<FileUnit>& units) {
  CallGraph g;

  // name -> classes declaring it virtual/override; class -> direct bases.
  std::map<std::string, std::set<std::string>> virtual_decls;
  std::map<std::string, std::vector<std::string>> bases;

  auto node_for = [&](const FunctionDef& def) -> std::size_t {
    const std::string key = def.qualified();
    const auto it = g.by_name_.find(key);
    if (it != g.by_name_.end()) return it->second;
    g.nodes_.push_back({key, {}, {}, false});
    g.by_name_.emplace(key, g.nodes_.size() - 1);
    return g.nodes_.size() - 1;
  };

  // --- pass 1: index definitions -------------------------------------------
  for (std::size_t f = 0; f < units.size(); ++f) {
    if (!units[f].in_graph) continue;
    const TokenStream& ts = units[f].ts;
    const auto& toks = ts.tokens();
    const std::size_t n = toks.size();
    std::vector<ClassContext> class_stack;

    for (std::size_t i = 0; i < n; ++i) {
      while (!class_stack.empty() && i > class_stack.back().body_end) {
        class_stack.pop_back();
      }
      const Token& t = toks[i];

      // Class/struct context (skipping `enum class`).
      if ((t.ident("class") || t.ident("struct")) &&
          !ts.at(ts.prev_code(i)).ident("enum")) {
        std::string cls;
        std::size_t k = ts.next_code(i);
        std::size_t base_colon = n;
        while (k < n) {
          const Token& ct = ts.at(k);
          if (ct.kind == TK::kIdentifier) {
            cls = ct.text;  // last component of a qualified name wins
            k = ts.next_code(k);
            continue;
          }
          if (ct.punct("::") || ct.ident("final")) {
            k = ts.next_code(k);
            continue;
          }
          if (ct.punct("<")) {
            const std::size_t close = ts.match_forward(k);
            if (close >= n) break;
            k = ts.next_code(close);
            continue;
          }
          if (ct.punct(":")) {
            base_colon = k;
            k = ts.next_code(k);
            continue;
          }
          break;
        }
        if (k < n && ts.at(k).punct("{") && !cls.empty()) {
          const std::size_t body_close = ts.match_forward(k);
          if (body_close < n) {
            class_stack.push_back({cls, body_close});
            if (base_colon < n) {
              for (std::size_t b = base_colon; b < k; ++b) {
                if (toks[b].kind == TK::kIdentifier &&
                    toks[b].text != "public" && toks[b].text != "protected" &&
                    toks[b].text != "private" && toks[b].text != "virtual") {
                  bases[cls].push_back(toks[b].text);
                }
              }
            }
          }
        }
        continue;
      }

      // Candidate: identifier directly followed by '('.
      if (t.kind != TK::kIdentifier || is_not_function_name(t.text)) continue;
      if (i + 1 >= n || !toks[i + 1].punct("(")) continue;
      const std::size_t close = ts.match_forward(i + 1);
      if (close >= n) continue;
      bool saw_override = false;
      const std::size_t body = find_body(ts, close, &saw_override);
      const LeadingMarkers markers = scan_leading(ts, i);

      // Explicit qualifier (`Class::name`) wins over the context stack.
      std::string cls;
      const std::size_t prev = ts.prev_code(i);
      if (prev < n && toks[prev].punct("::")) {
        const std::size_t q = ts.prev_code(prev);
        if (q < n && toks[q].kind == TK::kIdentifier) cls = toks[q].text;
      } else if (!class_stack.empty()) {
        cls = class_stack.back().name;
      }

      if ((markers.is_virtual || saw_override) && !cls.empty()) {
        virtual_decls[t.text].insert(cls);
      }
      if (body >= n) continue;  // declaration only
      const std::size_t body_close = ts.match_forward(body);
      if (body_close >= n) continue;

      FunctionDef def;
      def.name = t.text;
      def.class_name = cls;
      def.file = f;
      def.name_idx = i;
      def.body_begin = body;
      def.body_end = body_close;
      def.line = t.line;
      def.hot = markers.hot;
      const std::size_t node = node_for(def);
      g.nodes_[node].defs.push_back(def);
      g.nodes_[node].hot = g.nodes_[node].hot || def.hot;
    }
  }

  // Bare-name index for the unique-definition fallback.
  std::map<std::string, std::vector<std::size_t>> by_bare_name;
  for (std::size_t node = 0; node < g.nodes_.size(); ++node) {
    by_bare_name[g.nodes_[node].defs.front().name].push_back(node);
  }

  // Exact lookup walking the (single-inheritance chain of the) base classes.
  auto lookup_method = [&](const std::string& cls,
                           const std::string& name) -> std::size_t {
    std::string cur = cls;
    for (std::size_t depth = 0; depth < 8 && !cur.empty(); ++depth) {
      const std::size_t hit = g.find(cur + "::" + name);
      if (hit != CallGraph::npos) return hit;
      const auto it = bases.find(cur);
      if (it == bases.end() || it->second.empty()) break;
      cur = it->second.front();
    }
    return CallGraph::npos;
  };

  // --- pass 2: resolve calls into edges ------------------------------------
  for (std::size_t f = 0; f < units.size(); ++f) {
    if (!units[f].in_graph) continue;
    const FileUnit& unit = units[f];
    // Definition signatures are recorded as calls by the scope parser; their
    // name tokens must not resolve into self-edges.
    std::set<std::size_t> def_name_idx;
    for (const auto& node : g.nodes_) {
      for (const FunctionDef& def : node.defs) {
        if (def.file == f) def_name_idx.insert(def.name_idx);
      }
    }
    for (const Call& call : unit.structure.calls) {
      if (def_name_idx.count(call.name_idx) != 0) continue;
      const std::size_t caller = g.enclosing(f, call.name_idx);
      if (caller == CallGraph::npos) continue;

      std::size_t callee = CallGraph::npos;
      if (!call.receiver.empty() && call.qualified) {
        callee = lookup_method(call.receiver, call.name);
      } else if (call.receiver == "this") {
        // `this->method()` dispatches on the caller's own class (virtual
        // overrides are handled below like any other resolved method edge).
        const std::string& caller_cls =
            g.nodes_[caller].defs.front().class_name;
        if (!caller_cls.empty()) callee = lookup_method(caller_cls, call.name);
      } else if (!call.receiver.empty()) {
        const std::string rtype =
            unit.structure.type_of(call.receiver, call.name_idx);
        if (!rtype.empty()) callee = lookup_method(rtype, call.name);
      } else {
        // A method call chained onto a call result (`a().b()`) has no
        // receiver identifier, so resolving `b` against the caller's own
        // class would fabricate edges.  One idiom is recoverable: the
        // singleton accessor `Class::fn().b()` almost always returns Class&,
        // so try `Class::b`; anything else stays dangling.
        const std::size_t before = unit.ts.prev_code(call.name_idx);
        if (before < unit.ts.size() && (unit.ts.at(before).punct(".") ||
                                        unit.ts.at(before).punct("->"))) {
          const std::size_t rparen = unit.ts.prev_code(before);
          if (rparen < unit.ts.size() && unit.ts.at(rparen).punct(")")) {
            const std::size_t lparen = unit.ts.match_backward(rparen);
            const std::size_t fn = unit.ts.prev_code(lparen);
            const std::size_t colons = unit.ts.prev_code(fn);
            if (fn < unit.ts.size() &&
                unit.ts.at(fn).kind == TK::kIdentifier &&
                colons < unit.ts.size() && unit.ts.at(colons).punct("::")) {
              const std::size_t cls_idx = unit.ts.prev_code(colons);
              if (cls_idx < unit.ts.size() &&
                  unit.ts.at(cls_idx).kind == TK::kIdentifier) {
                callee =
                    lookup_method(unit.ts.at(cls_idx).text, call.name);
              }
            }
          }
          if (callee == CallGraph::npos) continue;
        }
        // A bare name declared as a callable variable (a lambda via `auto`
        // or a std::function) calls through the variable, not a project
        // function.  Other recorded declarations (an in-class method
        // definition is one) still resolve normally.
        const std::string bare_type =
            unit.structure.type_of(call.name, call.name_idx);
        if (callee == CallGraph::npos && bare_type != "auto" &&
            bare_type != "function") {
          const std::string& caller_cls =
              g.nodes_[caller].defs.front().class_name;
          if (!caller_cls.empty()) {
            callee = lookup_method(caller_cls, call.name);
          }
          if (callee == CallGraph::npos) callee = g.find(call.name);
          if (callee == CallGraph::npos) {
            const auto it = by_bare_name.find(call.name);
            if (it != by_bare_name.end() && it->second.size() == 1) {
              callee = it->second.front();
            }
          }
        }
      }
      if (callee == CallGraph::npos) continue;

      const std::size_t line = unit.ts.at(call.name_idx).line;
      auto& edges = g.nodes_[caller].edges;
      const bool dup = std::any_of(
          edges.begin(), edges.end(), [&](const CallEdge& e) {
            return e.callee == callee && e.file == f && e.line == line;
          });
      if (!dup) edges.push_back({callee, f, call.name_idx, line});
    }
  }

  // --- Tarjan SCC (iterative), components in reverse topological order -----
  const std::size_t count = g.nodes_.size();
  g.scc_of_.assign(count, CallGraph::npos);
  std::vector<std::size_t> index(count, CallGraph::npos);
  std::vector<std::size_t> lowlink(count, 0);
  std::vector<bool> on_stack(count, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge;
  };
  for (std::size_t start = 0; start < count; ++start) {
    if (index[start] != CallGraph::npos) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.edge < g.nodes_[fr.node].edges.size()) {
        const std::size_t w = g.nodes_[fr.node].edges[fr.edge].callee;
        ++fr.edge;
        if (index[w] == CallGraph::npos) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[fr.node] = std::min(lowlink[fr.node], index[w]);
        }
        continue;
      }
      const std::size_t v = fr.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        std::vector<std::size_t> comp;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          g.scc_of_[w] = g.sccs_.size();
          comp.push_back(w);
          if (w == v) break;
        }
        std::sort(comp.begin(), comp.end());
        g.sccs_.push_back(std::move(comp));
      }
    }
  }

  // Publish the virtual-method index through the bases-aware map.
  for (auto& [name, classes] : virtual_decls) {
    auto& list = g.virtuals_[name];
    list.assign(classes.begin(), classes.end());
  }
  return g;
}

}  // namespace tsce::analyze
