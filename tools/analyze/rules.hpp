/// \file rules.hpp
/// Rule metadata and the per-file analysis entry point for tsce_analyze.
///
/// Eleven rules: the five token rules inherited from the original regex-based
/// tsce_lint (deterministic-rng, invalid-id-sentinel, no-iostream-hot,
/// metric-name-registry, pragma-once), now matched on the token stream so
/// strings and comments can never false-positive, plus six semantics-aware
/// rules built on the scope parser (nondeterministic-iteration,
/// float-fitness-equality, lock-across-callback, rng-shared-capture,
/// no-alloc-hot, unused-suppression).
///
/// Suppression: `// tsce-lint: allow(<rule>)` on the offending line, or on a
/// comment-only line directly above it.  Every suppression must match a
/// finding — stale ones are themselves findings (unused-suppression).

#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tsce::analyze {

struct Finding {
  std::string file;  ///< repo-relative path
  std::size_t line;  ///< 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;  ///< one-liner for --help and SARIF shortDescription
};

/// Registry of every rule id the analyzer can emit (drives SARIF
/// tool.driver.rules and the unknown-suppression diagnostic).
[[nodiscard]] const std::array<RuleInfo, 11>& rule_registry() noexcept;

/// Analyzes one translation unit.  \p rel_path selects the directory-scoped
/// rules (e.g. no-iostream-hot only fires under src/core|analysis|model) and
/// is stamped into each finding; \p source is the file's full text.
[[nodiscard]] std::vector<Finding> analyze_source(const std::string& rel_path,
                                                  std::string_view source);

/// Same, with the registered metric/trace name set (the string literals of
/// src/obs/names.hpp, see extract_registered_names).  Under bench/, tools/,
/// and examples/ a literal metric name is then a metric-name-registry finding
/// only when it is NOT in the set — those trees may name ad-hoc series, but
/// the name must still be declared in the registry so trace_report and the
/// exporter agree on it.  An empty set keeps the strict literal ban
/// everywhere (the two-argument overload above).
[[nodiscard]] std::vector<Finding> analyze_source(
    const std::string& rel_path, std::string_view source,
    const std::vector<std::string>& registered_names);

/// Extracts the registered metric/trace names from the text of
/// src/obs/names.hpp: every plain string literal in the file (the registry
/// holds nothing but `inline constexpr const char* kX = "...";` entries).
[[nodiscard]] std::vector<std::string> extract_registered_names(
    std::string_view names_source);

}  // namespace tsce::analyze
