/// \file rules.hpp
/// Rule metadata and the analysis entry points for tsce_analyze.
///
/// Nineteen rules: the five token rules inherited from the original regex-based
/// tsce_lint (deterministic-rng, invalid-id-sentinel, no-iostream-hot,
/// metric-name-registry, pragma-once), six semantics-aware per-file rules
/// built on the scope parser (nondeterministic-iteration,
/// float-fitness-equality, lock-across-callback, rng-shared-capture,
/// no-alloc-hot, unused-suppression), four interprocedural rules written
/// against the project call graph (transitive-hot-alloc, lock-order-cycle,
/// rng-stream-escape, hot-path-virtual — see interp.hpp), and four
/// concurrency dataflow rules written against the member-field access index
/// and lockset dataflow (guarded-by-inconsistency, unguarded-shared-write,
/// atomic-plain-mix, lock-scope-leak — see concurrency.hpp).
///
/// Suppression: `// tsce-lint: allow(<rule>)` on the offending line, or on a
/// comment-only line directly above it.  Every suppression must match a
/// finding — stale ones are themselves findings (unused-suppression).

#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tsce::analyze {

struct Finding {
  std::string file;  ///< repo-relative path
  std::size_t line;  ///< 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
  /// Stable identity for SARIF baseline diffing: FNV-1a hash (hex) of
  /// rule + file + the trimmed source text of the flagged line, so findings
  /// survive unrelated edits that only shift line numbers.
  std::string fingerprint;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;  ///< one-liner for --help and SARIF shortDescription
};

/// Registry of every rule id the analyzer can emit (drives SARIF
/// tool.driver.rules and the unknown-suppression diagnostic).
[[nodiscard]] const std::array<RuleInfo, 19>& rule_registry() noexcept;

/// One row of the --stats wall-time table: milliseconds attributed to a rule,
/// or to a parenthesized analysis phase ("(lex+parse)", "(callgraph)",
/// "(accesses)") that is shared by several rules.
struct RuleStat {
  std::string name;
  double millis = 0.0;
};

/// One translation unit handed to the project pass.
struct FileInput {
  std::string rel;  ///< repo-relative path (selects directory-scoped rules)
  std::string source;
};

struct ProjectResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  std::string callgraph_dot;      ///< Graphviz rendering; empty unless requested
  /// Wall-time per rule (plus shared phases), in pipeline order — drives
  /// tsce_analyze --stats.  Always populated; the timers cost microseconds.
  std::vector<RuleStat> stats;
  /// Guarded-by inference report (JSON): per field, the best-supported lock
  /// and its confidence.  See concurrency.hpp.  Always populated.
  std::string guarded_by_report;
};

/// Whole-program analysis: runs the per-file rules on every input, builds the
/// project call graph over the graph-eligible trees (src/, bench/, tools/),
/// runs the four interprocedural rules, and routes every finding through its
/// file's suppression comments.  \p registered_names is the metric/trace name
/// set of src/obs/names.hpp (see extract_registered_names); pass an empty
/// vector to keep the strict literal ban everywhere.
[[nodiscard]] ProjectResult analyze_project(
    const std::vector<FileInput>& files,
    const std::vector<std::string>& registered_names, bool want_dot = false);

/// Analyzes one translation unit (single-file convenience wrapper over
/// analyze_project; interprocedural rules still run, seeing just this file's
/// definitions).  \p rel_path selects the directory-scoped rules (e.g.
/// no-iostream-hot only fires under src/core|analysis|model) and is stamped
/// into each finding; \p source is the file's full text.
[[nodiscard]] std::vector<Finding> analyze_source(const std::string& rel_path,
                                                  std::string_view source);

/// Same, with the registered metric/trace name set.  Under bench/, tools/,
/// and examples/ a literal metric name is then a metric-name-registry finding
/// only when it is NOT in the set — those trees may name ad-hoc series, but
/// the name must still be declared in the registry so trace_report and the
/// exporter agree on it.  An empty set keeps the strict literal ban
/// everywhere (the two-argument overload above).
[[nodiscard]] std::vector<Finding> analyze_source(
    const std::string& rel_path, std::string_view source,
    const std::vector<std::string>& registered_names);

/// Extracts the registered metric/trace names from the text of
/// src/obs/names.hpp: every plain string literal in the file (the registry
/// holds nothing but `inline constexpr const char* kX = "...";` entries).
[[nodiscard]] std::vector<std::string> extract_registered_names(
    std::string_view names_source);

}  // namespace tsce::analyze
