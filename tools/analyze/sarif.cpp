#include "analyze/sarif.hpp"

#include "util/json.hpp"

namespace tsce::analyze {

using tsce::util::Json;

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& tool_version) {
  Json rules = Json::array();
  for (const RuleInfo& info : rule_registry()) {
    Json rule = Json::object();
    rule.set("id", std::string(info.id));
    Json text = Json::object();
    text.set("text", std::string(info.summary));
    rule.set("shortDescription", std::move(text));
    rules.push_back(std::move(rule));
  }

  Json driver = Json::object();
  driver.set("name", "tsce_analyze");
  driver.set("version", tool_version);
  driver.set("informationUri",
             "https://github.com/tsce/tsce-alloc/blob/main/DESIGN.md");
  driver.set("rules", std::move(rules));
  Json tool = Json::object();
  tool.set("driver", std::move(driver));

  Json results = Json::array();
  for (const Finding& f : findings) {
    Json message = Json::object();
    message.set("text", f.message);

    Json artifact = Json::object();
    artifact.set("uri", f.file);
    artifact.set("uriBaseId", "SRCROOT");
    Json physical = Json::object();
    physical.set("artifactLocation", std::move(artifact));
    if (f.line != 0) {
      Json region = Json::object();
      region.set("startLine", f.line);
      physical.set("region", std::move(region));
    }
    Json location = Json::object();
    location.set("physicalLocation", std::move(physical));
    Json locations = Json::array();
    locations.push_back(std::move(location));

    Json result = Json::object();
    result.set("ruleId", f.rule);
    result.set("level", "error");
    result.set("message", std::move(message));
    result.set("locations", std::move(locations));
    if (!f.fingerprint.empty()) {
      // Versioned so a future hash change cannot silently match against an
      // old baseline (the diff treats unknown versions as new findings).
      Json prints = Json::object();
      prints.set("tsceFingerprint/v1", f.fingerprint);
      result.set("partialFingerprints", std::move(prints));
    }
    results.push_back(std::move(result));
  }

  Json run = Json::object();
  run.set("tool", std::move(tool));
  Json base = Json::object();
  Json base_uri = Json::object();
  base_uri.set("uri", "file:///");
  base.set("SRCROOT", std::move(base_uri));
  run.set("originalUriBaseIds", std::move(base));
  run.set("results", std::move(results));
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json doc = Json::object();
  doc.set("$schema",
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json");
  doc.set("version", "2.1.0");
  doc.set("runs", std::move(runs));
  return doc.dump(2);
}

}  // namespace tsce::analyze
