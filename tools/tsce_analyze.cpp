/// \file tsce_analyze.cpp
/// AST-grade determinism & concurrency analyzer for the tsce codebase —
/// the successor to the regex-based tsce_lint.  A real C++ lexer plus a
/// lightweight declaration/scope parser (analyze/lexer.hpp, analyze/
/// scopes.hpp; deliberately no libclang so the tool builds and runs anywhere
/// the code does, in milliseconds) drives fifteen rule visitors: the five
/// inherited token rules, six semantics-aware per-file rules, and four
/// interprocedural rules over a project-wide call graph (analyze/
/// callgraph.hpp).  See analyze/rules.cpp for the rule catalog and DESIGN.md
/// §11 for the architecture.
///
/// Usage:
///   tsce_analyze [--root <repo-root>] [--sarif <out.sarif>]
///                [--baseline <old.sarif>] [--changed-only [<git-ref>]]
///                [--callgraph-dot <out.dot>]
///   tsce_analyze --file <path> [--as <repo-relative-path>] [--sarif <out>]
///
/// The default mode walks src/, tools/, bench/, examples/, and tests/
/// (skipping fixtures/ directories) for .cpp/.hpp files and analyzes them as
/// one program: per-file rules first, then the call graph and the
/// interprocedural rules.  --file analyzes a single file — used by the
/// golden-fixture tests — and --as sets the repo-relative path it is analyzed
/// as, which selects the directory-scoped rules.
///
/// --baseline diffs the scan against a committed SARIF document and fails
/// only on NEW findings (matched on rule + file + fingerprint, not line
/// numbers).  --changed-only restricts *reported* findings to files changed
/// against a git ref (default HEAD) plus untracked files; the call graph is
/// still built project-wide so interprocedural findings stay sound.
/// --callgraph-dot writes the resolved call graph in Graphviz DOT form.
///
/// Findings print to stderr in file:line: [rule] message form; with --sarif a
/// SARIF 2.1.0 document is also written.  Exit: 0 clean (or no new findings
/// under --baseline), 1 findings, 2 usage error.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/rules.hpp"
#include "analyze/sarif.hpp"

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kVersion = "1.0.0";

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage(int code) {
  std::printf(
      "usage: tsce_analyze [--root <repo-root>] [--sarif <out.sarif>]\n"
      "                    [--baseline <old.sarif>] [--changed-only [<ref>]]\n"
      "                    [--callgraph-dot <out.dot>]\n"
      "       tsce_analyze --file <path> [--as <rel-path>] [--names <hpp>]\n"
      "                    [--sarif <out>]\n"
      "\n--names points at a metric-name registry header (default: the\n"
      "repo's src/obs/names.hpp under --root, in both modes); its string\n"
      "literals are the names a bench/tools/examples literal may legally\n"
      "spell out.\n"
      "--baseline exits 1 only on findings absent from the given SARIF\n"
      "document (rule+file+fingerprint match).  --changed-only reports only\n"
      "files changed vs. a git ref (default HEAD) or untracked.\n"
      "\nrules:\n");
  for (const tsce::analyze::RuleInfo& r : tsce::analyze::rule_registry()) {
    std::printf("  %-26s %.*s\n", std::string(r.id).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  return code;
}

/// Lines of a shell command's stdout; ok=false when the command failed.
std::vector<std::string> command_lines(const std::string& cmd, bool& ok) {
  std::vector<std::string> lines;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ok = false;
    return lines;
  }
  std::string current;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    current += buf;
    std::size_t nl = current.find('\n');
    while (nl != std::string::npos) {
      if (nl > 0) lines.push_back(current.substr(0, nl));
      current.erase(0, nl + 1);
      nl = current.find('\n');
    }
  }
  if (!current.empty()) lines.push_back(current);
  ok = pclose(pipe) == 0;
  return lines;
}

/// Files changed against \p ref plus untracked files, repo-relative.
std::set<std::string> changed_files(const fs::path& root,
                                    const std::string& ref) {
  std::set<std::string> changed;
  const std::string git = "git -C '" + root.string() + "' ";
  bool diff_ok = false;
  for (const std::string& line :
       command_lines(git + "diff --name-only " + ref + " 2>/dev/null",
                     diff_ok)) {
    changed.insert(line);
  }
  if (!diff_ok) {
    std::fprintf(stderr,
                 "tsce_analyze: warning: 'git diff --name-only %s' failed; "
                 "--changed-only may be empty\n",
                 ref.c_str());
  }
  bool ls_ok = false;
  for (const std::string& line : command_lines(
           git + "ls-files --others --exclude-standard 2>/dev/null", ls_ok)) {
    changed.insert(line);
  }
  return changed;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string single_file;
  std::string as_path;
  std::string sarif_path;
  std::string names_path;
  std::string baseline_path;
  std::string dot_path;
  bool changed_only = false;
  std::string changed_ref = "HEAD";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--file" && i + 1 < argc) {
      single_file = argv[++i];
    } else if (arg == "--as" && i + 1 < argc) {
      as_path = argv[++i];
    } else if (arg == "--names" && i + 1 < argc) {
      names_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--callgraph-dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--changed-only") {
      changed_only = true;
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        changed_ref = argv[++i];
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "tsce_analyze: unknown argument '%s'\n", argv[i]);
      return usage(2);
    }
  }

  // The registered-name set: explicit --names wins; both modes fall back to
  // the repo's own registry (relative to --root) so bench/tools literals are
  // validated against it even when a single file is analyzed.
  std::vector<std::string> registered_names;
  if (names_path.empty()) {
    const fs::path default_names =
        fs::absolute(root) / "src" / "obs" / "names.hpp";
    if (fs::exists(default_names)) names_path = default_names.string();
  }
  if (!names_path.empty()) {
    std::string names_source;
    if (!read_file(names_path, names_source)) {
      std::fprintf(stderr, "tsce_analyze: cannot open '%s'\n",
                   names_path.c_str());
      return 2;
    }
    registered_names = tsce::analyze::extract_registered_names(names_source);
  }

  std::vector<tsce::analyze::FileInput> inputs;
  std::vector<tsce::analyze::Finding> io_findings;
  if (!single_file.empty()) {
    std::string source;
    if (!read_file(single_file, source)) {
      std::fprintf(stderr, "tsce_analyze: cannot open '%s'\n",
                   single_file.c_str());
      return 2;
    }
    const std::string rel = as_path.empty() ? single_file : as_path;
    inputs.push_back({rel, std::move(source)});
  } else {
    root = fs::absolute(root);
    // Deterministic scan: collect, sort by repo-relative path, then read.
    std::vector<std::pair<std::string, fs::path>> paths;
    for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const fs::path ext = entry.path().extension();
        if (ext != ".cpp" && ext != ".hpp") continue;
        const std::string rel =
            fs::relative(entry.path(), root).generic_string();
        // Golden rule fixtures are intentionally-violating inputs, not code.
        if (rel.find("/fixtures/") != std::string::npos) continue;
        paths.emplace_back(rel, entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& [rel, path] : paths) {
      std::string source;
      if (!read_file(path, source)) {
        io_findings.push_back({rel, 0, "io", "cannot open file", {}});
        continue;
      }
      inputs.push_back({rel, std::move(source)});
    }
  }
  const std::size_t files = inputs.size();

  tsce::analyze::ProjectResult result = tsce::analyze::analyze_project(
      inputs, registered_names, !dot_path.empty());
  std::vector<tsce::analyze::Finding> findings = std::move(result.findings);
  findings.insert(findings.end(), io_findings.begin(), io_findings.end());

  std::string scope_note;
  if (changed_only) {
    const std::set<std::string> changed = changed_files(root, changed_ref);
    std::erase_if(findings, [&](const tsce::analyze::Finding& f) {
      return changed.count(f.file) == 0;
    });
    scope_note = " in " + std::to_string(changed.size()) +
                 " changed file" + (changed.size() == 1 ? "" : "s");
  }

  for (const tsce::analyze::Finding& f : findings) {
    if (f.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                   f.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tsce_analyze: cannot write '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << tsce::analyze::to_sarif(findings, std::string(kVersion));
  }
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tsce_analyze: cannot write '%s'\n",
                   dot_path.c_str());
      return 2;
    }
    out << result.callgraph_dot;
  }

  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_file(baseline_path, baseline_text)) {
      std::fprintf(stderr, "tsce_analyze: cannot open baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    tsce::analyze::BaselineDiff diff;
    try {
      diff = tsce::analyze::diff_against_baseline(
          findings, tsce::analyze::baseline_keys_from_sarif(baseline_text));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tsce_analyze: malformed baseline '%s': %s\n",
                   baseline_path.c_str(), e.what());
      return 2;
    }
    for (const tsce::analyze::Finding& f : diff.new_findings) {
      std::fprintf(stderr, "NEW %s:%zu: [%s]\n", f.file.c_str(), f.line,
                   f.rule.c_str());
    }
    std::printf(
        "tsce_analyze: %zu file%s checked, %zu finding%s%s (%zu new, %zu in "
        "baseline)\n",
        files, files == 1 ? "" : "s", findings.size(),
        findings.size() == 1 ? "" : "s", scope_note.c_str(),
        diff.new_findings.size(), diff.in_baseline);
    return diff.new_findings.empty() ? 0 : 1;
  }

  std::printf("tsce_analyze: %zu file%s checked, %zu finding%s%s\n", files,
              files == 1 ? "" : "s", findings.size(),
              findings.size() == 1 ? "" : "s", scope_note.c_str());
  return findings.empty() ? 0 : 1;
}
