/// \file tsce_analyze.cpp
/// AST-grade determinism & concurrency analyzer for the tsce codebase —
/// the successor to the regex-based tsce_lint.  A real C++ lexer plus a
/// lightweight declaration/scope parser (analyze/lexer.hpp, analyze/
/// scopes.hpp; deliberately no libclang so the tool builds and runs anywhere
/// the code does, in milliseconds) drives ten rule visitors: the five
/// inherited token rules and five semantics-aware determinism rules.  See
/// analyze/rules.cpp for the rule catalog and DESIGN.md §11 for the
/// architecture.
///
/// Usage:
///   tsce_analyze [--root <repo-root>] [--sarif <out.sarif>]
///   tsce_analyze --file <path> [--as <repo-relative-path>] [--sarif <out>]
///
/// The default mode walks src/, tools/, bench/, examples/, and tests/
/// (skipping fixtures/ directories) for .cpp/.hpp files.  --file analyzes a
/// single file — used by the golden-fixture tests — and --as sets the
/// repo-relative path it is analyzed as, which selects the directory-scoped
/// rules.  Findings print to stderr in file:line: [rule] message form; with
/// --sarif a SARIF 2.1.0 document is also written.  Exit: 0 clean, 1
/// findings, 2 usage error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/rules.hpp"
#include "analyze/sarif.hpp"

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kVersion = "1.0.0";

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage(int code) {
  std::printf(
      "usage: tsce_analyze [--root <repo-root>] [--sarif <out.sarif>]\n"
      "       tsce_analyze --file <path> [--as <rel-path>] [--names <hpp>]\n"
      "                    [--sarif <out>]\n"
      "\n--names points at a metric-name registry header (default: the\n"
      "repo's src/obs/names.hpp in --root mode); its string literals are the\n"
      "names a bench/tools/examples literal may legally spell out.\n"
      "\nrules:\n");
  for (const tsce::analyze::RuleInfo& r : tsce::analyze::rule_registry()) {
    std::printf("  %-26s %.*s\n", std::string(r.id).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string single_file;
  std::string as_path;
  std::string sarif_path;
  std::string names_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--file" && i + 1 < argc) {
      single_file = argv[++i];
    } else if (arg == "--as" && i + 1 < argc) {
      as_path = argv[++i];
    } else if (arg == "--names" && i + 1 < argc) {
      names_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "tsce_analyze: unknown argument '%s'\n", argv[i]);
      return usage(2);
    }
  }

  std::vector<tsce::analyze::Finding> findings;
  std::size_t files = 0;

  // The registered-name set: explicit --names wins; --root mode falls back to
  // the repo's own registry so a full scan always validates bench/tools
  // literals against it.
  std::vector<std::string> registered_names;
  if (names_path.empty() && single_file.empty()) {
    const fs::path default_names =
        fs::absolute(root) / "src" / "obs" / "names.hpp";
    if (fs::exists(default_names)) names_path = default_names.string();
  }
  if (!names_path.empty()) {
    std::string names_source;
    if (!read_file(names_path, names_source)) {
      std::fprintf(stderr, "tsce_analyze: cannot open '%s'\n",
                   names_path.c_str());
      return 2;
    }
    registered_names = tsce::analyze::extract_registered_names(names_source);
  }

  if (!single_file.empty()) {
    std::string source;
    if (!read_file(single_file, source)) {
      std::fprintf(stderr, "tsce_analyze: cannot open '%s'\n",
                   single_file.c_str());
      return 2;
    }
    const std::string rel = as_path.empty() ? single_file : as_path;
    findings = tsce::analyze::analyze_source(rel, source, registered_names);
    files = 1;
  } else {
    root = fs::absolute(root);
    for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const fs::path ext = entry.path().extension();
        if (ext != ".cpp" && ext != ".hpp") continue;
        const std::string rel =
            fs::relative(entry.path(), root).generic_string();
        // Golden rule fixtures are intentionally-violating inputs, not code.
        if (rel.find("/fixtures/") != std::string::npos) continue;
        ++files;
        std::string source;
        if (!read_file(entry.path(), source)) {
          findings.push_back({rel, 0, "io", "cannot open file"});
          continue;
        }
        auto file_findings =
            tsce::analyze::analyze_source(rel, source, registered_names);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
      }
    }
  }

  for (const tsce::analyze::Finding& f : findings) {
    if (f.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                   f.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tsce_analyze: cannot write '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << tsce::analyze::to_sarif(findings, std::string(kVersion));
  }
  std::printf("tsce_analyze: %zu file%s checked, %zu finding%s\n", files,
              files == 1 ? "" : "s", findings.size(),
              findings.size() == 1 ? "" : "s");
  return findings.empty() ? 0 : 1;
}
