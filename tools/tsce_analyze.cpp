/// \file tsce_analyze.cpp
/// AST-grade determinism & concurrency analyzer for the tsce codebase —
/// the successor to the regex-based tsce_lint.  A real C++ lexer plus a
/// lightweight declaration/scope parser (analyze/lexer.hpp, analyze/
/// scopes.hpp; deliberately no libclang so the tool builds and runs anywhere
/// the code does, in milliseconds) drives fifteen rule visitors: the five
/// inherited token rules, six semantics-aware per-file rules, and four
/// interprocedural rules over a project-wide call graph (analyze/
/// callgraph.hpp).  See analyze/rules.cpp for the rule catalog and DESIGN.md
/// §11 for the architecture.
///
/// Usage:
///   tsce_analyze [--root <repo-root>] [--sarif <out.sarif>]
///                [--baseline <old.sarif>] [--changed-only [<git-ref>]]
///                [--callgraph-dot <out.dot>] [--guarded-by-report <out.json>]
///                [--stats [--csv]]
///   tsce_analyze --file <path> [--as <repo-relative-path>] [--sarif <out>]
///
/// The default mode walks src/, tools/, bench/, examples/, and tests/
/// (skipping fixtures/ directories) for .cpp/.hpp files and analyzes them as
/// one program: per-file rules first, then the call graph and the
/// interprocedural rules.  --file analyzes a single file — used by the
/// golden-fixture tests — and --as sets the repo-relative path it is analyzed
/// as, which selects the directory-scoped rules.
///
/// --baseline diffs the scan against a committed SARIF document and fails
/// only on NEW findings (matched on rule + file + fingerprint, not line
/// numbers).  --changed-only restricts *reported* findings to files changed
/// against a git ref (default HEAD) plus untracked files; the call graph is
/// still built project-wide so interprocedural findings stay sound.  A failed
/// `git diff` is a hard error (exit 2) — a silent empty scope would let a bad
/// ref pass CI.  --callgraph-dot writes the resolved call graph in Graphviz
/// DOT form.  --guarded-by-report writes the per-field inferred-lock report
/// (JSON) the concurrency tier computed.  --stats prints a per-rule finding
/// count and wall-time table to stdout (--csv for a machine-readable form).
///
/// Findings print to stderr in file:line: [rule] message form; with --sarif a
/// SARIF 2.1.0 document is also written.  Exit: 0 clean (or no new findings
/// under --baseline), 1 findings, 2 usage error.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/rules.hpp"
#include "analyze/sarif.hpp"

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kVersion = "1.0.0";

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage(int code) {
  std::printf(
      "usage: tsce_analyze [--root <repo-root>] [--sarif <out.sarif>]\n"
      "                    [--baseline <old.sarif>] [--changed-only [<ref>]]\n"
      "                    [--callgraph-dot <out.dot>]\n"
      "                    [--guarded-by-report <out.json>] [--stats [--csv]]\n"
      "       tsce_analyze --file <path> [--as <rel-path>] [--names <hpp>]\n"
      "                    [--sarif <out>]\n"
      "\n--names points at a metric-name registry header (default: the\n"
      "repo's src/obs/names.hpp under --root, in both modes); its string\n"
      "literals are the names a bench/tools/examples literal may legally\n"
      "spell out.\n"
      "--baseline exits 1 only on findings absent from the given SARIF\n"
      "document (rule+file+fingerprint match).  --changed-only reports only\n"
      "files changed vs. a git ref (default HEAD) or untracked; a failed git\n"
      "diff is a hard error, not an empty scope.  --guarded-by-report writes\n"
      "the per-field inferred-lock JSON report.  --stats prints per-rule\n"
      "finding counts and wall times (--csv: rule,findings,millis rows).\n"
      "\nrules:\n");
  for (const tsce::analyze::RuleInfo& r : tsce::analyze::rule_registry()) {
    std::printf("  %-26s %.*s\n", std::string(r.id).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  return code;
}

/// Single-quotes \p s for POSIX sh, escaping embedded quotes, so paths with
/// spaces (or worse) survive the popen shell.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

/// NUL-separated fields of a shell command's stdout (the `git -z` framing:
/// paths are emitted verbatim, never quoted or escaped, so spaces and quotes
/// in filenames round-trip).  ok=false when the command could not be started
/// or exited non-zero.
std::vector<std::string> command_fields(const std::string& cmd, bool& ok) {
  std::vector<std::string> fields;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ok = false;
    return fields;
  }
  std::string current;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    current.append(buf, got);
  }
  ok = pclose(pipe) == 0;
  std::size_t start = 0;
  while (start < current.size()) {
    const std::size_t nul = current.find('\0', start);
    const std::size_t end = nul == std::string::npos ? current.size() : nul;
    if (end > start) fields.push_back(current.substr(start, end - start));
    start = end + 1;
  }
  return fields;
}

/// Files changed against \p ref plus untracked files, repo-relative.
/// ok=false when `git diff` itself failed (bad ref, not a repo) — the caller
/// must treat that as a usage error, NOT as "nothing changed".
std::set<std::string> changed_files(const fs::path& root,
                                    const std::string& ref, bool& ok) {
  std::set<std::string> changed;
  const std::string git = "git -C " + shell_quote(root.string()) + " ";
  bool diff_ok = false;
  for (std::string& field : command_fields(
           git + "diff --name-only -z " + shell_quote(ref) + " 2>/dev/null",
           diff_ok)) {
    changed.insert(std::move(field));
  }
  ok = diff_ok;
  if (!diff_ok) return changed;
  // Untracked files are additive; a failure here (pathological, given the
  // diff just succeeded) only narrows the report and is safe to tolerate.
  bool ls_ok = false;
  for (std::string& field : command_fields(
           git + "ls-files --others --exclude-standard -z 2>/dev/null",
           ls_ok)) {
    changed.insert(std::move(field));
  }
  return changed;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string single_file;
  std::string as_path;
  std::string sarif_path;
  std::string names_path;
  std::string baseline_path;
  std::string dot_path;
  std::string guarded_by_path;
  bool want_stats = false;
  bool stats_csv = false;
  bool changed_only = false;
  std::string changed_ref = "HEAD";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--file" && i + 1 < argc) {
      single_file = argv[++i];
    } else if (arg == "--as" && i + 1 < argc) {
      as_path = argv[++i];
    } else if (arg == "--names" && i + 1 < argc) {
      names_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--callgraph-dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--guarded-by-report" && i + 1 < argc) {
      guarded_by_path = argv[++i];
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--csv") {
      stats_csv = true;
    } else if (arg == "--changed-only") {
      changed_only = true;
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        changed_ref = argv[++i];
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "tsce_analyze: unknown argument '%s'\n", argv[i]);
      return usage(2);
    }
  }
  if (stats_csv && !want_stats) {
    std::fprintf(stderr, "tsce_analyze: --csv requires --stats\n");
    return usage(2);
  }

  // The registered-name set: explicit --names wins; both modes fall back to
  // the repo's own registry (relative to --root) so bench/tools literals are
  // validated against it even when a single file is analyzed.
  std::vector<std::string> registered_names;
  if (names_path.empty()) {
    const fs::path default_names =
        fs::absolute(root) / "src" / "obs" / "names.hpp";
    if (fs::exists(default_names)) names_path = default_names.string();
  }
  if (!names_path.empty()) {
    std::string names_source;
    if (!read_file(names_path, names_source)) {
      std::fprintf(stderr, "tsce_analyze: cannot open '%s'\n",
                   names_path.c_str());
      return 2;
    }
    registered_names = tsce::analyze::extract_registered_names(names_source);
  }

  std::vector<tsce::analyze::FileInput> inputs;
  std::vector<tsce::analyze::Finding> io_findings;
  if (!single_file.empty()) {
    std::string source;
    if (!read_file(single_file, source)) {
      std::fprintf(stderr, "tsce_analyze: cannot open '%s'\n",
                   single_file.c_str());
      return 2;
    }
    const std::string rel = as_path.empty() ? single_file : as_path;
    inputs.push_back({rel, std::move(source)});
  } else {
    root = fs::absolute(root);
    // Deterministic scan: collect, sort by repo-relative path, then read.
    std::vector<std::pair<std::string, fs::path>> paths;
    for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const fs::path ext = entry.path().extension();
        if (ext != ".cpp" && ext != ".hpp") continue;
        const std::string rel =
            fs::relative(entry.path(), root).generic_string();
        // Golden rule fixtures are intentionally-violating inputs, not code.
        if (rel.find("/fixtures/") != std::string::npos) continue;
        paths.emplace_back(rel, entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& [rel, path] : paths) {
      std::string source;
      if (!read_file(path, source)) {
        io_findings.push_back({rel, 0, "io", "cannot open file", {}});
        continue;
      }
      inputs.push_back({rel, std::move(source)});
    }
  }
  const std::size_t files = inputs.size();

  tsce::analyze::ProjectResult result = tsce::analyze::analyze_project(
      inputs, registered_names, !dot_path.empty());
  std::vector<tsce::analyze::Finding> findings = std::move(result.findings);
  findings.insert(findings.end(), io_findings.begin(), io_findings.end());

  std::string scope_note;
  if (changed_only) {
    bool git_ok = false;
    const std::set<std::string> changed =
        changed_files(root, changed_ref, git_ok);
    if (!git_ok) {
      std::fprintf(stderr,
                   "tsce_analyze: 'git diff --name-only %s' failed in '%s'; "
                   "refusing to treat the failure as an empty change set\n",
                   changed_ref.c_str(), root.string().c_str());
      return 2;
    }
    std::erase_if(findings, [&](const tsce::analyze::Finding& f) {
      return changed.count(f.file) == 0;
    });
    scope_note = " in " + std::to_string(changed.size()) +
                 " changed file" + (changed.size() == 1 ? "" : "s");
  }

  for (const tsce::analyze::Finding& f : findings) {
    if (f.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                   f.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tsce_analyze: cannot write '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << tsce::analyze::to_sarif(findings, std::string(kVersion));
  }
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tsce_analyze: cannot write '%s'\n",
                   dot_path.c_str());
      return 2;
    }
    out << result.callgraph_dot;
  }
  if (!guarded_by_path.empty()) {
    std::ofstream out(guarded_by_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "tsce_analyze: cannot write '%s'\n",
                   guarded_by_path.c_str());
      return 2;
    }
    out << result.guarded_by_report << '\n';
  }

  if (want_stats) {
    // Finding counts per rule (parenthesized phase rows stay at zero — no
    // finding carries a phase name as its rule).
    std::map<std::string, std::size_t> counts;
    for (const tsce::analyze::Finding& f : findings) ++counts[f.rule];
    double total_ms = 0.0;
    for (const tsce::analyze::RuleStat& s : result.stats) total_ms += s.millis;
    if (stats_csv) {
      std::printf("rule,findings,millis\n");
      for (const tsce::analyze::RuleStat& s : result.stats) {
        std::printf("%s,%zu,%.3f\n", s.name.c_str(), counts[s.name], s.millis);
      }
      std::printf("total,%zu,%.3f\n", findings.size(), total_ms);
    } else {
      std::printf("%-28s %9s %12s\n", "rule", "findings", "millis");
      for (const tsce::analyze::RuleStat& s : result.stats) {
        std::printf("%-28s %9zu %12.3f\n", s.name.c_str(), counts[s.name],
                    s.millis);
      }
      std::printf("%-28s %9zu %12.3f\n", "total", findings.size(), total_ms);
    }
  }

  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_file(baseline_path, baseline_text)) {
      std::fprintf(stderr, "tsce_analyze: cannot open baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    tsce::analyze::BaselineDiff diff;
    try {
      diff = tsce::analyze::diff_against_baseline(
          findings, tsce::analyze::baseline_keys_from_sarif(baseline_text));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tsce_analyze: malformed baseline '%s': %s\n",
                   baseline_path.c_str(), e.what());
      return 2;
    }
    for (const tsce::analyze::Finding& f : diff.new_findings) {
      std::fprintf(stderr, "NEW %s:%zu: [%s]\n", f.file.c_str(), f.line,
                   f.rule.c_str());
    }
    std::printf(
        "tsce_analyze: %zu file%s checked, %zu finding%s%s (%zu new, %zu in "
        "baseline)\n",
        files, files == 1 ? "" : "s", findings.size(),
        findings.size() == 1 ? "" : "s", scope_note.c_str(),
        diff.new_findings.size(), diff.in_baseline);
    return diff.new_findings.empty() ? 0 : 1;
  }

  std::printf("tsce_analyze: %zu file%s checked, %zu finding%s%s\n", files,
              files == 1 ? "" : "s", findings.size(),
              findings.size() == 1 ? "" : "s", scope_note.c_str());
  return findings.empty() ? 0 : 1;
}
