/// \file tsce_lint.cpp
/// Project-specific lint rules that clang-tidy cannot express.  Token/regex
/// based on purpose — no libclang dependency, so it runs anywhere the code
/// builds and costs milliseconds as a tier-1 ctest case.
///
/// Usage: tsce_lint [--root <repo-root>]
///
/// Rules (suppress one occurrence with a trailing
/// `// tsce-lint: allow(<rule>)` comment):
///   deterministic-rng    src|tools|bench|examples must not use std::rand,
///                        srand, std::random_device, or std::time seeds; all
///                        randomness flows through util::Rng so runs replay
///                        byte-identically from a seed.
///   invalid-id-sentinel  src must not compare or assign bare -1 to
///                        MachineId/StringId/AppIndex values; use
///                        model::kInvalidId / model::kUnassigned.
///   no-iostream-hot      src/core, src/analysis, src/model must not include
///                        <iostream> (static init cost + accidental sync
///                        stdio in the decode hot path); use <cstdio>.
///   metric-name-registry metric and trace names must come from the
///                        src/obs/names.hpp registry, never string literals
///                        at the call site (counter/gauge/histogram/Span/
///                        trace_event) — keeps trace_report and dashboards in
///                        one namespace.  tests/ are exempt.
///   pragma-once          every header uses `#pragma once`; classic
///                        #ifndef/#define guards are rejected.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line;  // 0 = whole-file rule
  std::string rule;
  std::string message;
};

struct LintContext {
  fs::path root;
  std::vector<Violation> violations;

  void report(const fs::path& file, std::size_t line, std::string rule,
              std::string message) {
    violations.push_back({fs::relative(file, root).generic_string(), line,
                          std::move(rule), std::move(message)});
  }
};

/// True when \p rel (repo-relative, generic separators) starts with \p prefix.
bool in_dir(const std::string& rel, std::string_view prefix) {
  return rel.size() > prefix.size() && rel.compare(0, prefix.size(), prefix) == 0 &&
         rel[prefix.size()] == '/';
}

/// Strips string/char-literal contents (keeping the delimiters) and comments
/// from one line, tracking block-comment state across lines.  Keeps matching
/// honest: rule patterns never fire inside strings or comments, while call
/// shapes like `counter("` survive as `counter("`.
std::string strip_noise(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      out.push_back(c);
      const char quote = c;
      ++i;
      while (i < line.size() && line[i] != quote) {
        if (line[i] == '\\') ++i;  // skip the escaped character
        ++i;
      }
      if (i < line.size()) out.push_back(quote);  // closing delimiter
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool suppressed(const std::string& raw_line, std::string_view rule) {
  const std::size_t at = raw_line.find("tsce-lint: allow(");
  if (at == std::string::npos) return false;
  const std::size_t open = raw_line.find('(', at);
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  return raw_line.compare(open + 1, close - open - 1, rule) == 0;
}

const std::regex kBannedRng(
    R"(std\s*::\s*rand\b|\bsrand\s*\(|random_device|std\s*::\s*time\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
const std::regex kIdTypes(R"(\b(MachineId|StringId|AppIndex)\b)");
const std::regex kBareMinusOne(R"((^|[^\w.])-1\b)");
const std::regex kIostream(R"(#\s*include\s*<iostream>)");
const std::regex kLiteralMetricName(
    R"(\b(counter|gauge|histogram|Span|trace_event)\s*\(\s*")");
const std::regex kIfndefGuard(R"(#\s*ifndef\s+\w*_(H|HPP|H_|HPP_)\s*$)");
const std::regex kPragmaOnce(R"(#\s*pragma\s+once\b)");

void lint_file(LintContext& ctx, const fs::path& file) {
  const std::string rel = fs::relative(file, ctx.root).generic_string();
  const bool is_header = file.extension() == ".hpp";
  const bool rng_scope = !in_dir(rel, "tests");
  const bool id_scope = in_dir(rel, "src");
  const bool iostream_scope = in_dir(rel, "src/core") ||
                              in_dir(rel, "src/analysis") || in_dir(rel, "src/model");
  const bool name_scope = !in_dir(rel, "tests") && rel != "src/obs/names.hpp";

  std::ifstream in(file);
  if (!in) {
    ctx.report(file, 0, "io", "cannot open file");
    return;
  }

  std::string raw;
  bool in_block_comment = false;
  bool saw_pragma_once = false;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string code = strip_noise(raw, in_block_comment);
    if (code.empty()) continue;

    if (std::regex_search(code, kPragmaOnce)) saw_pragma_once = true;
    if (is_header && std::regex_search(code, kIfndefGuard) &&
        !suppressed(raw, "pragma-once")) {
      ctx.report(file, line_no, "pragma-once",
                 "classic #ifndef include guard; use #pragma once");
    }
    if (rng_scope && std::regex_search(code, kBannedRng) &&
        !suppressed(raw, "deterministic-rng")) {
      ctx.report(file, line_no, "deterministic-rng",
                 "non-deterministic randomness source; derive from util::Rng "
                 "(Rng::stream for parallel work)");
    }
    if (id_scope && std::regex_search(code, kIdTypes) &&
        std::regex_search(code, kBareMinusOne) &&
        code.find("kInvalidId") == std::string::npos &&
        !suppressed(raw, "invalid-id-sentinel")) {
      ctx.report(file, line_no, "invalid-id-sentinel",
                 "bare -1 used with an id type; use model::kInvalidId / "
                 "model::kUnassigned");
    }
    if (iostream_scope && std::regex_search(code, kIostream) &&
        !suppressed(raw, "no-iostream-hot")) {
      ctx.report(file, line_no, "no-iostream-hot",
                 "<iostream> in a hot-path module; use <cstdio>");
    }
    if (name_scope && std::regex_search(code, kLiteralMetricName) &&
        !suppressed(raw, "metric-name-registry")) {
      ctx.report(file, line_no, "metric-name-registry",
                 "metric/trace name passed as a string literal; add a "
                 "constant to src/obs/names.hpp and reference it");
    }
  }

  if (is_header && !saw_pragma_once) {
    ctx.report(file, 0, "pragma-once", "header is missing #pragma once");
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: tsce_lint [--root <repo-root>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "tsce_lint: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  root = fs::absolute(root);

  LintContext ctx{root, {}};
  std::size_t files = 0;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const fs::path ext = entry.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      ++files;
      lint_file(ctx, entry.path());
    }
  }

  for (const Violation& v : ctx.violations) {
    if (v.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                   v.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    }
  }
  std::printf("tsce_lint: %zu files checked, %zu violation%s\n", files,
              ctx.violations.size(), ctx.violations.size() == 1 ? "" : "s");
  return ctx.violations.empty() ? 0 : 1;
}
