/// \file trace_report.cpp
/// Folds a trace JSONL file (obs::trace_open output) into per-phase span-time
/// and fitness-convergence tables.
///
/// Usage: trace_report <trace.jsonl> [--csv] [--full]
///        trace_report --metrics-series <series.jsonl> [--csv]
///        trace_report --convergence <trace.jsonl>...
///        trace_report --convergence-diff <old.csv> <new.csv> [--tolerance w]
///
/// Span records are grouped by "name [phase]" (the phase field is the
/// allocator name by convention, so one span kind like "search.trial" yields
/// one row per strategy).  "search.improve" events are folded into a
/// per-phase convergence summary: improvement count, first/best fitness, and
/// the time at which the best was reached; --full additionally lists every
/// improvement event in order.  Event records of any other name — including
/// flight-recorder dumps (fr.*) — are folded into a per-name count/time-window
/// table, so an obs::flight_recorder_dump file is consumed directly.
///
/// --metrics-series folds an obs::MetricsExporter JSONL series into counter
/// throughput (first/last value, delta, rate over the sampled window) and
/// histogram tail-latency (count, mean, p50/p90/p99/p999, max at the last
/// sample) tables; --csv emits both as CSV.
///
/// --convergence is the regression-dashboard mode: it accepts one trace file
/// per scenario and emits one CSV row per search.improve event
/// (git_sha,scenario,phase,t_s,worth,slackness) — the per-scenario
/// worth-vs-time curves, keyed by commit so successive CI runs can be
/// overlaid or diffed.  git_sha and scenario come from each file's
/// run-provenance header (obs::RunInfo).
///
/// --convergence-diff closes the loop: it takes two --convergence CSVs (the
/// baseline run and the candidate run), treats each (scenario, phase) series
/// as a worth-at-time step function, and compares the two functions at every
/// time point either run improved.  A point where the old run had reached
/// more than --tolerance worth above the new run is a convergence regression:
/// one CSV row (scenario,phase,t_s,old_worth,new_worth,delta) per such point,
/// exit 1 when any exist.  Curves only in the baseline are regressions
/// (coverage lost); curves only in the candidate are fine.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/names.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using tsce::util::Json;
using tsce::util::RunningStats;
using tsce::util::Table;

double field_num(const Json& f, std::string_view key, double fallback = 0.0) {
  return f.contains(key) ? f.at(key).as_number() : fallback;
}

std::string field_str(const Json& f, std::string_view key) {
  return f.contains(key) && f.at(key).is_string() ? f.at(key).as_string()
                                                  : std::string();
}

struct SpanGroup {
  RunningStats dur_s;
};

/// Per-name tally of event records that have no specialized fold (e.g. the
/// flight recorder's fr.* events): count plus the time window they span.
struct EventGroup {
  std::size_t count = 0;
  double t_first_s = 0.0;
  double t_last_s = 0.0;
};

struct Improvement {
  double ts = 0.0;
  std::string phase;
  double trial = 0.0;
  double iteration = 0.0;
  double worth = 0.0;
  double slackness = 0.0;
};

struct Convergence {
  std::size_t improvements = 0;
  double first_worth = 0.0;
  double best_worth = 0.0;
  double best_slackness = 0.0;
  double t_first_s = 0.0;
  double t_best_s = 0.0;
};

void print_run_info(const Json& info) {
  std::printf("run: git %s, %s build, seed %lld, %lld threads\n",
              info.contains("git_sha") ? info.at("git_sha").as_string().c_str()
                                       : "?",
              info.contains("build_type")
                  ? info.at("build_type").as_string().c_str()
                  : "?",
              static_cast<long long>(field_num(info, "seed")),
              static_cast<long long>(field_num(info, "threads", 1)));
  if (info.contains("params") && info.at("params").is_object()) {
    const auto& params = info.at("params").as_object();
    if (!params.empty()) {
      std::printf("params:");
      for (const auto& [key, value] : params) {
        std::printf(" %s=%s", key.c_str(),
                    value.is_string() ? value.as_string().c_str()
                                      : value.dump().c_str());
      }
      std::printf("\n");
    }
  }
}

/// Dashboard mode: streams every search.improve event from each trace file
/// as one CSV row keyed by the header's commit and scenario.  Returns the
/// process exit code.
int run_convergence(const std::vector<std::string>& paths) {
  std::printf("git_sha,scenario,phase,t_s,worth,slackness\n");
  std::size_t rows = 0;
  std::size_t malformed = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "trace_report: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::string git_sha = "?";
    std::string scenario = "?";
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      Json record;
      try {
        record = Json::parse(line);
      } catch (const std::exception&) {
        ++malformed;
        continue;
      }
      if (!record.is_object() || !record.contains("t")) {
        ++malformed;
        continue;
      }
      const std::string& type = record.at("t").as_string();
      if (type == "header") {
        if (record.contains("run_info")) {
          const Json& info = record.at("run_info");
          if (info.contains("git_sha")) git_sha = info.at("git_sha").as_string();
          if (info.contains("params") && info.at("params").is_object() &&
              info.at("params").contains("scenario")) {
            scenario = info.at("params").at("scenario").as_string();
          }
        }
        continue;
      }
      if (type != "event" ||
          record.at("name").as_string() != tsce::obs::names::kSearchImprove) {
        continue;
      }
      const Json fields = record.contains("f") ? record.at("f") : Json::object();
      std::printf("%s,%s,%s,%.6f,%.0f,%.6f\n", git_sha.c_str(),
                  scenario.c_str(), field_str(fields, "phase").c_str(),
                  field_num(record, "ts"), field_num(fields, "worth"),
                  field_num(fields, "slackness"));
      ++rows;
    }
  }
  if (rows == 0) {
    std::fprintf(stderr,
                 "trace_report: no improvement records found (%zu malformed "
                 "lines)\n",
                 malformed);
    return 1;
  }
  if (malformed > 0) {
    std::fprintf(stderr, "trace_report: skipped %zu malformed lines\n",
                 malformed);
  }
  return 0;
}

/// --metrics-series mode: folds an obs::MetricsExporter JSONL series into
/// counter-throughput and histogram-tail tables.  Returns the exit code.
int run_metrics_series(const std::string& path, bool csv) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::size_t samples = 0;
  std::size_t malformed = 0;
  double t_first = 0.0;
  double t_last = 0.0;
  Json first_metrics;
  Json last_metrics;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json record;
    try {
      record = Json::parse(line);
    } catch (const std::exception&) {
      ++malformed;
      continue;
    }
    if (!record.is_object() || !record.contains("t")) {
      ++malformed;
      continue;
    }
    const std::string& type = record.at("t").as_string();
    if (type == "header") {
      if (!csv && record.contains("run_info")) {
        print_run_info(record.at("run_info"));
      }
      continue;
    }
    if (type != "sample" || !record.contains("metrics")) continue;
    const double t_s = field_num(record, "t_s");
    if (samples == 0) {
      t_first = t_s;
      first_metrics = record.at("metrics");
    }
    t_last = t_s;
    last_metrics = record.at("metrics");
    ++samples;
  }
  if (samples == 0) {
    std::fprintf(stderr,
                 "trace_report: no samples found in '%s' (%zu malformed "
                 "lines)\n",
                 path.c_str(), malformed);
    return 1;
  }
  const double window_s = t_last - t_first;
  if (!csv) {
    std::printf("%zu samples over %.3f s\n", samples, window_s);
  }

  Table counters({"counter", "first", "last", "delta", "rate/s"});
  if (last_metrics.contains("counters")) {
    for (const auto& [name, last] : last_metrics.at("counters").as_object()) {
      const double v_last = last.as_number();
      const double v_first =
          first_metrics.is_object() && first_metrics.contains("counters")
              ? field_num(first_metrics.at("counters"), name)
              : 0.0;
      const double delta = v_last - v_first;
      counters.add_row({name, Table::num(v_first, 0), Table::num(v_last, 0),
                        Table::num(delta, 0),
                        window_s > 0.0 ? Table::num(delta / window_s, 1)
                                       : "-"});
    }
  }
  if (csv) {
    counters.print_csv();
  } else {
    std::printf("\nCounter throughput (over the sampled window):\n");
    counters.print();
  }

  Table tails({"histogram", "count", "mean", "p50", "p90", "p99", "p999",
               "max"});
  if (last_metrics.contains("histograms")) {
    for (const auto& [name, h] : last_metrics.at("histograms").as_object()) {
      tails.add_row({name, Table::num(field_num(h, "count"), 0),
                     Table::num(field_num(h, "mean"), 1),
                     Table::num(field_num(h, "p50"), 0),
                     Table::num(field_num(h, "p90"), 0),
                     Table::num(field_num(h, "p99"), 0),
                     Table::num(field_num(h, "p999"), 0),
                     Table::num(field_num(h, "max"), 0)});
    }
  }
  if (csv) {
    tails.print_csv();
  } else {
    std::printf("\nHistogram tails (last sample):\n");
    tails.print();
  }

  if (malformed > 0) {
    std::fprintf(stderr, "trace_report: skipped %zu malformed lines\n",
                 malformed);
  }
  return 0;
}

/// One worth-vs-time curve from a --convergence CSV, sorted by time.
struct Curve {
  std::vector<std::pair<double, double>> points;  // (t_s, worth)

  /// Step-function value at time \p t: the worth of the last improvement at
  /// or before \p t, or 0 before the first one (no solution reached yet).
  [[nodiscard]] double at(double t) const {
    double worth = 0.0;
    for (const auto& [ts, w] : points) {
      if (ts > t) break;
      worth = w;
    }
    return worth;
  }
};

/// Parses a --convergence CSV (git_sha,scenario,phase,t_s,worth,slackness)
/// into per-(scenario, phase) curves.  Returns false on open/parse failure.
bool read_convergence_csv(const std::string& path,
                          std::map<std::pair<std::string, std::string>, Curve>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("git_sha,", 0) == 0) continue;  // header row
    }
    std::vector<std::string> cols;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      cols.push_back(line.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (cols.size() != 6) {
      std::fprintf(stderr, "trace_report: malformed row in '%s': %s\n",
                   path.c_str(), line.c_str());
      return false;
    }
    try {
      Curve& curve = out[{cols[1], cols[2]}];
      curve.points.emplace_back(std::stod(cols[3]), std::stod(cols[4]));
    } catch (const std::exception&) {
      std::fprintf(stderr, "trace_report: malformed row in '%s': %s\n",
                   path.c_str(), line.c_str());
      return false;
    }
  }
  for (auto& [key, curve] : out) {
    std::sort(curve.points.begin(), curve.points.end());
  }
  return true;
}

/// Diff mode: flags every time point where the baseline's worth-at-time step
/// function exceeds the candidate's by more than \p tolerance.  Returns the
/// process exit code (1 when any regression point exists).
int run_convergence_diff(const std::string& old_path,
                         const std::string& new_path, double tolerance) {
  std::map<std::pair<std::string, std::string>, Curve> old_curves;
  std::map<std::pair<std::string, std::string>, Curve> new_curves;
  if (!read_convergence_csv(old_path, old_curves) ||
      !read_convergence_csv(new_path, new_curves)) {
    return 1;
  }
  if (old_curves.empty()) {
    std::fprintf(stderr, "trace_report: no curves in baseline '%s'\n",
                 old_path.c_str());
    return 1;
  }
  std::printf("scenario,phase,t_s,old_worth,new_worth,delta\n");
  std::size_t regressions = 0;
  std::size_t curves_compared = 0;
  for (const auto& [key, old_curve] : old_curves) {
    const auto new_it = new_curves.find(key);
    if (new_it == new_curves.end()) {
      // A curve the candidate never produced: every baseline point regresses.
      for (const auto& [ts, worth] : old_curve.points) {
        if (worth > tolerance) {
          std::printf("%s,%s,%.6f,%.0f,0,%.6f\n", key.first.c_str(),
                      key.second.c_str(), ts, worth, worth);
          ++regressions;
        }
      }
      continue;
    }
    ++curves_compared;
    const Curve& new_curve = new_it->second;
    // Union of both curves' time points: the step functions only change
    // there, so checking these covers every time.
    std::vector<double> times;
    times.reserve(old_curve.points.size() + new_curve.points.size());
    for (const auto& [ts, worth] : old_curve.points) times.push_back(ts);
    for (const auto& [ts, worth] : new_curve.points) times.push_back(ts);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    // Before a curve's first recorded improvement its step function reads 0,
    // so any start-time jitter between the runs would show up as a
    // full-worth "regression".  Compare only from the later of the two
    // starts: that measures search quality, not launch latency.
    const double aligned_from = std::max(old_curve.points.front().first,
                                         new_curve.points.front().first);
    for (double t : times) {
      if (t < aligned_from) continue;
      const double old_worth = old_curve.at(t);
      const double new_worth = new_curve.at(t);
      const double delta = old_worth - new_worth;
      if (delta > tolerance) {
        std::printf("%s,%s,%.6f,%.0f,%.0f,%.6f\n", key.first.c_str(),
                    key.second.c_str(), t, old_worth, new_worth, delta);
        ++regressions;
      }
    }
  }
  if (regressions == 0) {
    std::fprintf(stderr,
                 "trace_report: no convergence regressions (%zu curves, "
                 "tolerance %.6f)\n",
                 curves_compared, tolerance);
    return 0;
  }
  std::fprintf(stderr,
               "trace_report: %zu convergence regression point%s (tolerance "
               "%.6f)\n",
               regressions, regressions == 1 ? "" : "s", tolerance);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool full = false;
  bool convergence_mode = false;
  bool convergence_diff = false;
  bool metrics_series = false;
  double tolerance = 0.0;
  tsce::util::Flags flags(
      "trace_report: fold a tsce trace JSONL into per-phase span-time and\n"
      "fitness-convergence tables.\n"
      "usage: trace_report <trace.jsonl> [--csv] [--full]\n"
      "       trace_report --metrics-series <series.jsonl> [--csv]\n"
      "       trace_report --convergence <trace.jsonl>...\n"
      "       trace_report --convergence-diff <old.csv> <new.csv> "
      "[--tolerance w]");
  flags.add("csv", &csv, "emit CSV instead of aligned tables");
  flags.add("full", &full, "also list every improvement event");
  flags.add("metrics-series", &metrics_series,
            "fold an obs::MetricsExporter JSONL series into counter "
            "throughput and histogram tail-latency tables");
  flags.add("convergence", &convergence_mode,
            "dashboard mode: one CSV row per improvement event "
            "(git_sha,scenario,phase,t_s,worth,slackness); accepts multiple "
            "trace files, one per scenario");
  flags.add("convergence-diff", &convergence_diff,
            "regression mode: compare two --convergence CSVs as worth-at-time "
            "step functions; exit 1 where the baseline beats the candidate by "
            "more than --tolerance");
  flags.add("tolerance", &tolerance,
            "worth slack allowed before --convergence-diff flags a "
            "regression (default 0)");
  if (!flags.parse(argc, argv)) return 1;
  if (convergence_diff) {
    if (flags.positional().size() != 2) {
      std::fprintf(stderr,
                   "trace_report: --convergence-diff expects exactly two "
                   "CSV files (old, new)\n");
      return 1;
    }
    return run_convergence_diff(flags.positional()[0], flags.positional()[1],
                                tolerance);
  }
  if (convergence_mode) {
    if (flags.positional().empty()) {
      std::fprintf(stderr,
                   "trace_report: --convergence expects at least one trace "
                   "file\n");
      return 1;
    }
    return run_convergence(flags.positional());
  }
  if (metrics_series) {
    if (flags.positional().size() != 1) {
      std::fprintf(stderr,
                   "trace_report: --metrics-series expects exactly one "
                   "series file\n");
      return 1;
    }
    return run_metrics_series(flags.positional()[0], csv);
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "trace_report: expected exactly one trace file\n");
    return 1;
  }

  std::ifstream in(flags.positional()[0]);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open '%s'\n",
                 flags.positional()[0].c_str());
    return 1;
  }

  // Insertion-ordered group keys (std::map would alphabetize phases).
  std::vector<std::string> span_order;
  std::map<std::string, SpanGroup> spans;
  std::vector<std::string> conv_order;
  std::map<std::string, Convergence> convergence;
  std::vector<Improvement> improvements;
  std::vector<std::string> event_order;
  std::map<std::string, EventGroup> events;
  std::size_t malformed = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json record;
    try {
      record = Json::parse(line);
    } catch (const std::exception&) {
      ++malformed;
      continue;
    }
    if (!record.is_object() || !record.contains("t")) {
      ++malformed;
      continue;
    }
    const std::string& type = record.at("t").as_string();
    if (type == "header") {
      if (record.contains("run_info")) print_run_info(record.at("run_info"));
      continue;
    }
    const Json fields =
        record.contains("f") ? record.at("f") : Json::object();
    if (type == "span") {
      const std::string phase = field_str(fields, "phase");
      std::string key = record.at("name").as_string();
      if (!phase.empty()) key += " [" + phase + "]";
      auto [it, inserted] = spans.try_emplace(key);
      if (inserted) span_order.push_back(key);
      it->second.dur_s.add(field_num(record, "dur"));
    } else if (type == "event" &&
               record.at("name").as_string() == tsce::obs::names::kSearchImprove) {
      Improvement imp;
      imp.ts = field_num(record, "ts");
      imp.phase = field_str(fields, "phase");
      imp.trial = field_num(fields, "trial");
      imp.iteration = field_num(fields, "iteration");
      imp.worth = field_num(fields, "worth");
      imp.slackness = field_num(fields, "slackness");
      improvements.push_back(imp);

      auto [it, inserted] = convergence.try_emplace(imp.phase);
      if (inserted) conv_order.push_back(imp.phase);
      Convergence& c = it->second;
      if (c.improvements == 0) {
        c.first_worth = imp.worth;
        c.t_first_s = imp.ts;
        c.best_worth = imp.worth;
        c.best_slackness = imp.slackness;
        c.t_best_s = imp.ts;
      } else if (imp.worth > c.best_worth ||
                 (imp.worth == c.best_worth &&
                  imp.slackness > c.best_slackness)) {
        c.best_worth = imp.worth;
        c.best_slackness = imp.slackness;
        c.t_best_s = imp.ts;
      }
      ++c.improvements;
    } else if (type == "event") {
      const std::string name = record.at("name").as_string();
      auto [it, inserted] = events.try_emplace(name);
      if (inserted) event_order.push_back(name);
      EventGroup& g = it->second;
      const double ts = field_num(record, "ts");
      if (g.count == 0) g.t_first_s = ts;
      g.t_last_s = ts;
      ++g.count;
    }
  }

  if (spans.empty() && convergence.empty() && events.empty()) {
    std::fprintf(stderr,
                 "trace_report: no span or improvement records found (%zu "
                 "malformed lines)\n",
                 malformed);
    return 1;
  }

  if (!spans.empty()) {
    Table span_table({"phase", "spans", "total s", "mean ms", "max ms"});
    for (const std::string& key : span_order) {
      const RunningStats& d = spans.at(key).dur_s;
      span_table.add_row({key, std::to_string(d.count()),
                          Table::num(d.mean() * static_cast<double>(d.count()), 3),
                          Table::num(d.mean() * 1e3, 3),
                          Table::num(d.max() * 1e3, 3)});
    }
    if (csv) {
      span_table.print_csv();
    } else {
      std::printf("\nPer-phase span time:\n");
      span_table.print();
    }
  }

  if (!events.empty()) {
    Table event_table({"event", "count", "t(first) s", "t(last) s"});
    for (const std::string& name : event_order) {
      const EventGroup& g = events.at(name);
      event_table.add_row({name, std::to_string(g.count),
                           Table::num(g.t_first_s, 6),
                           Table::num(g.t_last_s, 6)});
    }
    if (csv) {
      event_table.print_csv();
    } else {
      std::printf("\nEvents:\n");
      event_table.print();
    }
  }

  if (!convergence.empty()) {
    Table conv_table({"phase", "improvements", "first worth", "best worth",
                      "best slack", "t(first) s", "t(best) s"});
    for (const std::string& phase : conv_order) {
      const Convergence& c = convergence.at(phase);
      conv_table.add_row({phase.empty() ? "(none)" : phase,
                          std::to_string(c.improvements),
                          Table::num(c.first_worth, 0),
                          Table::num(c.best_worth, 0),
                          Table::num(c.best_slackness, 4),
                          Table::num(c.t_first_s, 3), Table::num(c.t_best_s, 3)});
    }
    if (csv) {
      conv_table.print_csv();
    } else {
      std::printf("\nFitness convergence (search.improve events):\n");
      conv_table.print();
    }
  }

  if (full && !improvements.empty()) {
    Table improvement_table(
        {"t s", "phase", "trial", "iteration", "worth", "slack"});
    for (const Improvement& imp : improvements) {
      improvement_table.add_row(
          {Table::num(imp.ts, 3), imp.phase, Table::num(imp.trial, 0),
           Table::num(imp.iteration, 0), Table::num(imp.worth, 0),
           Table::num(imp.slackness, 4)});
    }
    if (csv) {
      improvement_table.print_csv();
    } else {
      std::printf("\nImprovement events:\n");
      improvement_table.print();
    }
  }

  if (malformed > 0) {
    std::fprintf(stderr, "trace_report: skipped %zu malformed lines\n",
                 malformed);
  }
  return 0;
}
