# Static-analysis convenience targets:
#   cmake --build build --target analyze       # tsce_analyze repo scan + SARIF
#   cmake --build build --target tidy          # clang-tidy (.clang-tidy checks)
#   cmake --build build --target format-check  # clang-format --dry-run -Werror
# tidy and format-check degrade to a skip message when the LLVM tools are not
# installed (the CI matrix has them; minimal build containers may not).
# `analyze` needs only the project toolchain — tsce_analyze is built from this
# repo — and also runs inside tier1 as a ctest case (tools/CMakeLists.txt).

if(TSCE_BUILD_TOOLS)
  add_custom_target(analyze
    COMMAND $<TARGET_FILE:tsce_analyze> --root ${CMAKE_SOURCE_DIR}
            --sarif ${CMAKE_BINARY_DIR}/tsce_analyze.sarif
    COMMENT "tsce_analyze over src/, tools/, bench/, examples/, tests/ (SARIF to build/tsce_analyze.sarif)"
    VERBATIM)
  add_dependencies(analyze tsce_analyze)
endif()

file(GLOB_RECURSE TSCE_TIDY_SOURCES CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.cpp
  ${CMAKE_SOURCE_DIR}/tools/*.cpp)
find_program(TSCE_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-19 clang-tidy-18
  clang-tidy-17 clang-tidy-16 clang-tidy-15)
if(TSCE_CLANG_TIDY_EXE)
  add_custom_target(tidy
    COMMAND ${TSCE_CLANG_TIDY_EXE} -p ${CMAKE_BINARY_DIR} --quiet
            ${TSCE_TIDY_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy (checks from .clang-tidy, WarningsAsErrors=*) over src/ and tools/"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
            "tidy: clang-tidy not found in PATH -- skipped (install clang-tidy to run)"
    VERBATIM)
endif()

file(GLOB_RECURSE TSCE_FORMAT_SOURCES CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.cpp ${CMAKE_SOURCE_DIR}/src/*.hpp
  ${CMAKE_SOURCE_DIR}/tools/*.cpp
  ${CMAKE_SOURCE_DIR}/tests/*.cpp ${CMAKE_SOURCE_DIR}/tests/*.hpp
  ${CMAKE_SOURCE_DIR}/bench/*.cpp ${CMAKE_SOURCE_DIR}/bench/*.hpp
  ${CMAKE_SOURCE_DIR}/examples/*.cpp
  ${CMAKE_SOURCE_DIR}/cmake/*.cpp)
# Golden rule fixtures are analyzer inputs, not project code.
list(FILTER TSCE_FORMAT_SOURCES EXCLUDE REGEX "/fixtures/")
find_program(TSCE_CLANG_FORMAT_EXE NAMES clang-format clang-format-19
  clang-format-18 clang-format-17 clang-format-16 clang-format-15)
if(TSCE_CLANG_FORMAT_EXE)
  add_custom_target(format-check
    COMMAND ${TSCE_CLANG_FORMAT_EXE} --dry-run -Werror ${TSCE_FORMAT_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format --dry-run -Werror against .clang-format"
    VERBATIM)
else()
  add_custom_target(format-check
    COMMAND ${CMAKE_COMMAND} -E echo
            "format-check: clang-format not found in PATH -- skipped"
    VERBATIM)
endif()
