// Configure-time proof that the TSCE_TRACING=OFF surface of obs/trace.hpp is
// fully elided: tracing is compile-time false (so `if (tracing_active())`
// call sites are dead code) and Span carries no state.  Compiled by the
// try_compile check in the top-level CMakeLists regardless of the main
// build's TSCE_TRACING setting; a static_assert failure fails the configure.

#define TSCE_TRACING_ENABLED 0
#include "obs/trace.hpp"

#include <type_traits>

static_assert(!tsce::obs::kTracingCompiledIn,
              "TSCE_TRACING_ENABLED=0 must compile the tracer out");
static_assert(!tsce::obs::tracing_active(),
              "tracing_active() must be a constexpr false when compiled out");
static_assert(std::is_empty_v<tsce::obs::Span>,
              "disabled Span must be an empty class");

int main() {
  // The stub surface must accept the same call shapes as the real one.
  tsce::obs::Span span("configure.check", {{"k", 1}, {"s", "v"}});
  span.add("later", 2.0);
  tsce::obs::trace_event("configure.event", {{"n", std::uint64_t{3}}});
  tsce::obs::trace_close();
  return tsce::obs::tracing_active() ? 1 : 0;
}
