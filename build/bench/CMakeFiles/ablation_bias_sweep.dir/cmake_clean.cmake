file(REMOVE_RECURSE
  "CMakeFiles/ablation_bias_sweep.dir/ablation_bias_sweep.cpp.o"
  "CMakeFiles/ablation_bias_sweep.dir/ablation_bias_sweep.cpp.o.d"
  "ablation_bias_sweep"
  "ablation_bias_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bias_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
