# Empty dependencies file for ablation_bias_sweep.
# This may be replaced when dependencies are built.
