file(REMOVE_RECURSE
  "../lib/libtsce_bench_common.a"
)
