# Empty compiler generated dependencies file for tsce_bench_common.
# This may be replaced when dependencies are built.
