file(REMOVE_RECURSE
  "../lib/libtsce_bench_common.a"
  "../lib/libtsce_bench_common.pdb"
  "CMakeFiles/tsce_bench_common.dir/harness.cpp.o"
  "CMakeFiles/tsce_bench_common.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
