file(REMOVE_RECURSE
  "CMakeFiles/dag_extension.dir/dag_extension.cpp.o"
  "CMakeFiles/dag_extension.dir/dag_extension.cpp.o.d"
  "dag_extension"
  "dag_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
