# Empty compiler generated dependencies file for dag_extension.
# This may be replaced when dependencies are built.
