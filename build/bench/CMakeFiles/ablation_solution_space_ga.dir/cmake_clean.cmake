file(REMOVE_RECURSE
  "CMakeFiles/ablation_solution_space_ga.dir/ablation_solution_space_ga.cpp.o"
  "CMakeFiles/ablation_solution_space_ga.dir/ablation_solution_space_ga.cpp.o.d"
  "ablation_solution_space_ga"
  "ablation_solution_space_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_solution_space_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
