# Empty dependencies file for ablation_solution_space_ga.
# This may be replaced when dependencies are built.
