# Empty dependencies file for table1_workload.
# This may be replaced when dependencies are built.
