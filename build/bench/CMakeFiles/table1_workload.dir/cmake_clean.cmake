file(REMOVE_RECURSE
  "CMakeFiles/table1_workload.dir/table1_workload.cpp.o"
  "CMakeFiles/table1_workload.dir/table1_workload.cpp.o.d"
  "table1_workload"
  "table1_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
