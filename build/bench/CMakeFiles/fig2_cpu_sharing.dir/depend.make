# Empty dependencies file for fig2_cpu_sharing.
# This may be replaced when dependencies are built.
