file(REMOVE_RECURSE
  "CMakeFiles/fig2_cpu_sharing.dir/fig2_cpu_sharing.cpp.o"
  "CMakeFiles/fig2_cpu_sharing.dir/fig2_cpu_sharing.cpp.o.d"
  "fig2_cpu_sharing"
  "fig2_cpu_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cpu_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
