file(REMOVE_RECURSE
  "CMakeFiles/fig5_scenario3.dir/fig5_scenario3.cpp.o"
  "CMakeFiles/fig5_scenario3.dir/fig5_scenario3.cpp.o.d"
  "fig5_scenario3"
  "fig5_scenario3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scenario3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
