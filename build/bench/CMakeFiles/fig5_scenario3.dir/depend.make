# Empty dependencies file for fig5_scenario3.
# This may be replaced when dependencies are built.
