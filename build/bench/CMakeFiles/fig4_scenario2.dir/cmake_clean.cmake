file(REMOVE_RECURSE
  "CMakeFiles/fig4_scenario2.dir/fig4_scenario2.cpp.o"
  "CMakeFiles/fig4_scenario2.dir/fig4_scenario2.cpp.o.d"
  "fig4_scenario2"
  "fig4_scenario2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scenario2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
