file(REMOVE_RECURSE
  "CMakeFiles/runtime_comparison.dir/runtime_comparison.cpp.o"
  "CMakeFiles/runtime_comparison.dir/runtime_comparison.cpp.o.d"
  "runtime_comparison"
  "runtime_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
