file(REMOVE_RECURSE
  "CMakeFiles/robustness_validation.dir/robustness_validation.cpp.o"
  "CMakeFiles/robustness_validation.dir/robustness_validation.cpp.o.d"
  "robustness_validation"
  "robustness_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
