# Empty dependencies file for robustness_validation.
# This may be replaced when dependencies are built.
