# Empty compiler generated dependencies file for validation_utilization.
# This may be replaced when dependencies are built.
