file(REMOVE_RECURSE
  "CMakeFiles/validation_utilization.dir/validation_utilization.cpp.o"
  "CMakeFiles/validation_utilization.dir/validation_utilization.cpp.o.d"
  "validation_utilization"
  "validation_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
