file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheduler_policies.dir/ablation_scheduler_policies.cpp.o"
  "CMakeFiles/ablation_scheduler_policies.dir/ablation_scheduler_policies.cpp.o.d"
  "ablation_scheduler_policies"
  "ablation_scheduler_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduler_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
