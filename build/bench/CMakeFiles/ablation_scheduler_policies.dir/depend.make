# Empty dependencies file for ablation_scheduler_policies.
# This may be replaced when dependencies are built.
