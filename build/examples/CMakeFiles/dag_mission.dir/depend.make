# Empty dependencies file for dag_mission.
# This may be replaced when dependencies are built.
