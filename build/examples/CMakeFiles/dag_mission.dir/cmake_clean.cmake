file(REMOVE_RECURSE
  "CMakeFiles/dag_mission.dir/dag_mission.cpp.o"
  "CMakeFiles/dag_mission.dir/dag_mission.cpp.o.d"
  "dag_mission"
  "dag_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
