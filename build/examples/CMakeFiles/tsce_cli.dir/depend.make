# Empty dependencies file for tsce_cli.
# This may be replaced when dependencies are built.
