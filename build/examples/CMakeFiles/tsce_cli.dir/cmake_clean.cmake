file(REMOVE_RECURSE
  "CMakeFiles/tsce_cli.dir/tsce_cli.cpp.o"
  "CMakeFiles/tsce_cli.dir/tsce_cli.cpp.o.d"
  "tsce_cli"
  "tsce_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
