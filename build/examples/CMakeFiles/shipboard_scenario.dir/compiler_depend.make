# Empty compiler generated dependencies file for shipboard_scenario.
# This may be replaced when dependencies are built.
