file(REMOVE_RECURSE
  "CMakeFiles/shipboard_scenario.dir/shipboard_scenario.cpp.o"
  "CMakeFiles/shipboard_scenario.dir/shipboard_scenario.cpp.o.d"
  "shipboard_scenario"
  "shipboard_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shipboard_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
