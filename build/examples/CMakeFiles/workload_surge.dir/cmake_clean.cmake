file(REMOVE_RECURSE
  "CMakeFiles/workload_surge.dir/workload_surge.cpp.o"
  "CMakeFiles/workload_surge.dir/workload_surge.cpp.o.d"
  "workload_surge"
  "workload_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
