# Empty dependencies file for workload_surge.
# This may be replaced when dependencies are built.
