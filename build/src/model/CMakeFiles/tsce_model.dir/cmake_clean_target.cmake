file(REMOVE_RECURSE
  "libtsce_model.a"
)
