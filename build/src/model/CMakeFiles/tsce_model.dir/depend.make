# Empty dependencies file for tsce_model.
# This may be replaced when dependencies are built.
