file(REMOVE_RECURSE
  "CMakeFiles/tsce_model.dir/allocation.cpp.o"
  "CMakeFiles/tsce_model.dir/allocation.cpp.o.d"
  "CMakeFiles/tsce_model.dir/network.cpp.o"
  "CMakeFiles/tsce_model.dir/network.cpp.o.d"
  "CMakeFiles/tsce_model.dir/serialization.cpp.o"
  "CMakeFiles/tsce_model.dir/serialization.cpp.o.d"
  "CMakeFiles/tsce_model.dir/system_model.cpp.o"
  "CMakeFiles/tsce_model.dir/system_model.cpp.o.d"
  "libtsce_model.a"
  "libtsce_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
