
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/allocation.cpp" "src/model/CMakeFiles/tsce_model.dir/allocation.cpp.o" "gcc" "src/model/CMakeFiles/tsce_model.dir/allocation.cpp.o.d"
  "/root/repo/src/model/network.cpp" "src/model/CMakeFiles/tsce_model.dir/network.cpp.o" "gcc" "src/model/CMakeFiles/tsce_model.dir/network.cpp.o.d"
  "/root/repo/src/model/serialization.cpp" "src/model/CMakeFiles/tsce_model.dir/serialization.cpp.o" "gcc" "src/model/CMakeFiles/tsce_model.dir/serialization.cpp.o.d"
  "/root/repo/src/model/system_model.cpp" "src/model/CMakeFiles/tsce_model.dir/system_model.cpp.o" "gcc" "src/model/CMakeFiles/tsce_model.dir/system_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tsce_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
