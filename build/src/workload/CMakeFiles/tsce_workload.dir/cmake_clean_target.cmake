file(REMOVE_RECURSE
  "libtsce_workload.a"
)
