# Empty dependencies file for tsce_workload.
# This may be replaced when dependencies are built.
