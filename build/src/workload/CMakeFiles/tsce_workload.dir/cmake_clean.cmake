file(REMOVE_RECURSE
  "CMakeFiles/tsce_workload.dir/generator.cpp.o"
  "CMakeFiles/tsce_workload.dir/generator.cpp.o.d"
  "libtsce_workload.a"
  "libtsce_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
