file(REMOVE_RECURSE
  "libtsce_analysis.a"
)
