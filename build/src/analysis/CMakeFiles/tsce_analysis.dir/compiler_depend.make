# Empty compiler generated dependencies file for tsce_analysis.
# This may be replaced when dependencies are built.
