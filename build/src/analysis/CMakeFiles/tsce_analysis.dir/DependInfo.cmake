
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/estimates.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/estimates.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/estimates.cpp.o.d"
  "/root/repo/src/analysis/feasibility.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/feasibility.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/feasibility.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/priority.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/priority.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/priority.cpp.o.d"
  "/root/repo/src/analysis/session.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/session.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/session.cpp.o.d"
  "/root/repo/src/analysis/tightness.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/tightness.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/tightness.cpp.o.d"
  "/root/repo/src/analysis/utilization.cpp" "src/analysis/CMakeFiles/tsce_analysis.dir/utilization.cpp.o" "gcc" "src/analysis/CMakeFiles/tsce_analysis.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/tsce_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsce_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
