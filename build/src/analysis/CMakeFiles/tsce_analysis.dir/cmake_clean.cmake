file(REMOVE_RECURSE
  "CMakeFiles/tsce_analysis.dir/estimates.cpp.o"
  "CMakeFiles/tsce_analysis.dir/estimates.cpp.o.d"
  "CMakeFiles/tsce_analysis.dir/feasibility.cpp.o"
  "CMakeFiles/tsce_analysis.dir/feasibility.cpp.o.d"
  "CMakeFiles/tsce_analysis.dir/metrics.cpp.o"
  "CMakeFiles/tsce_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/tsce_analysis.dir/priority.cpp.o"
  "CMakeFiles/tsce_analysis.dir/priority.cpp.o.d"
  "CMakeFiles/tsce_analysis.dir/session.cpp.o"
  "CMakeFiles/tsce_analysis.dir/session.cpp.o.d"
  "CMakeFiles/tsce_analysis.dir/tightness.cpp.o"
  "CMakeFiles/tsce_analysis.dir/tightness.cpp.o.d"
  "CMakeFiles/tsce_analysis.dir/utilization.cpp.o"
  "CMakeFiles/tsce_analysis.dir/utilization.cpp.o.d"
  "libtsce_analysis.a"
  "libtsce_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
