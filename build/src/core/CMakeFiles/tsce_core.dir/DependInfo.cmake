
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/tsce_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/class_based.cpp" "src/core/CMakeFiles/tsce_core.dir/class_based.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/class_based.cpp.o.d"
  "/root/repo/src/core/decode.cpp" "src/core/CMakeFiles/tsce_core.dir/decode.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/decode.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/tsce_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/tsce_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/imr.cpp" "src/core/CMakeFiles/tsce_core.dir/imr.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/imr.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/tsce_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/ordered.cpp" "src/core/CMakeFiles/tsce_core.dir/ordered.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/ordered.cpp.o.d"
  "/root/repo/src/core/psg.cpp" "src/core/CMakeFiles/tsce_core.dir/psg.cpp.o" "gcc" "src/core/CMakeFiles/tsce_core.dir/psg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tsce_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tsce_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsce_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
