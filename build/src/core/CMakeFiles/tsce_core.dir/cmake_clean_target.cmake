file(REMOVE_RECURSE
  "libtsce_core.a"
)
