# Empty dependencies file for tsce_core.
# This may be replaced when dependencies are built.
