file(REMOVE_RECURSE
  "CMakeFiles/tsce_core.dir/baselines.cpp.o"
  "CMakeFiles/tsce_core.dir/baselines.cpp.o.d"
  "CMakeFiles/tsce_core.dir/class_based.cpp.o"
  "CMakeFiles/tsce_core.dir/class_based.cpp.o.d"
  "CMakeFiles/tsce_core.dir/decode.cpp.o"
  "CMakeFiles/tsce_core.dir/decode.cpp.o.d"
  "CMakeFiles/tsce_core.dir/dynamic.cpp.o"
  "CMakeFiles/tsce_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/tsce_core.dir/exact.cpp.o"
  "CMakeFiles/tsce_core.dir/exact.cpp.o.d"
  "CMakeFiles/tsce_core.dir/imr.cpp.o"
  "CMakeFiles/tsce_core.dir/imr.cpp.o.d"
  "CMakeFiles/tsce_core.dir/local_search.cpp.o"
  "CMakeFiles/tsce_core.dir/local_search.cpp.o.d"
  "CMakeFiles/tsce_core.dir/ordered.cpp.o"
  "CMakeFiles/tsce_core.dir/ordered.cpp.o.d"
  "CMakeFiles/tsce_core.dir/psg.cpp.o"
  "CMakeFiles/tsce_core.dir/psg.cpp.o.d"
  "libtsce_core.a"
  "libtsce_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
