file(REMOVE_RECURSE
  "libtsce_dag.a"
)
