# Empty dependencies file for tsce_dag.
# This may be replaced when dependencies are built.
