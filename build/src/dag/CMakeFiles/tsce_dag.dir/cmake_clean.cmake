file(REMOVE_RECURSE
  "CMakeFiles/tsce_dag.dir/allocator.cpp.o"
  "CMakeFiles/tsce_dag.dir/allocator.cpp.o.d"
  "CMakeFiles/tsce_dag.dir/analysis.cpp.o"
  "CMakeFiles/tsce_dag.dir/analysis.cpp.o.d"
  "CMakeFiles/tsce_dag.dir/generator.cpp.o"
  "CMakeFiles/tsce_dag.dir/generator.cpp.o.d"
  "CMakeFiles/tsce_dag.dir/model.cpp.o"
  "CMakeFiles/tsce_dag.dir/model.cpp.o.d"
  "libtsce_dag.a"
  "libtsce_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
