file(REMOVE_RECURSE
  "libtsce_util.a"
)
