# Empty dependencies file for tsce_util.
# This may be replaced when dependencies are built.
