file(REMOVE_RECURSE
  "CMakeFiles/tsce_util.dir/flags.cpp.o"
  "CMakeFiles/tsce_util.dir/flags.cpp.o.d"
  "CMakeFiles/tsce_util.dir/json.cpp.o"
  "CMakeFiles/tsce_util.dir/json.cpp.o.d"
  "CMakeFiles/tsce_util.dir/rng.cpp.o"
  "CMakeFiles/tsce_util.dir/rng.cpp.o.d"
  "CMakeFiles/tsce_util.dir/stats.cpp.o"
  "CMakeFiles/tsce_util.dir/stats.cpp.o.d"
  "CMakeFiles/tsce_util.dir/table.cpp.o"
  "CMakeFiles/tsce_util.dir/table.cpp.o.d"
  "CMakeFiles/tsce_util.dir/thread_pool.cpp.o"
  "CMakeFiles/tsce_util.dir/thread_pool.cpp.o.d"
  "libtsce_util.a"
  "libtsce_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
