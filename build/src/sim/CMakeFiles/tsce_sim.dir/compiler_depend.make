# Empty compiler generated dependencies file for tsce_sim.
# This may be replaced when dependencies are built.
