file(REMOVE_RECURSE
  "libtsce_sim.a"
)
