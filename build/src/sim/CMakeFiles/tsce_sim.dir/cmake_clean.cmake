file(REMOVE_RECURSE
  "CMakeFiles/tsce_sim.dir/simulator.cpp.o"
  "CMakeFiles/tsce_sim.dir/simulator.cpp.o.d"
  "libtsce_sim.a"
  "libtsce_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
