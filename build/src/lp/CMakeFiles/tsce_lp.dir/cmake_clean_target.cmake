file(REMOVE_RECURSE
  "libtsce_lp.a"
)
