file(REMOVE_RECURSE
  "CMakeFiles/tsce_lp.dir/problem.cpp.o"
  "CMakeFiles/tsce_lp.dir/problem.cpp.o.d"
  "CMakeFiles/tsce_lp.dir/simplex.cpp.o"
  "CMakeFiles/tsce_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/tsce_lp.dir/upper_bound.cpp.o"
  "CMakeFiles/tsce_lp.dir/upper_bound.cpp.o.d"
  "libtsce_lp.a"
  "libtsce_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsce_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
