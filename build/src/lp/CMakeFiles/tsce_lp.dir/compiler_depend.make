# Empty compiler generated dependencies file for tsce_lp.
# This may be replaced when dependencies are built.
