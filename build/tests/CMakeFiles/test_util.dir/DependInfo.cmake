
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/flags_test.cpp" "tests/CMakeFiles/test_util.dir/util/flags_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/flags_test.cpp.o.d"
  "/root/repo/tests/util/json_test.cpp" "tests/CMakeFiles/test_util.dir/util/json_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/json_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tsce_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tsce_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/tsce_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tsce_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tsce_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsce_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
