
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/edge_cases_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/edge_cases_test.cpp.o.d"
  "/root/repo/tests/integration/lifecycle_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/lifecycle_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tsce_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tsce_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/tsce_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tsce_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tsce_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsce_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
