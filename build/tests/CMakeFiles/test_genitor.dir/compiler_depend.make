# Empty compiler generated dependencies file for test_genitor.
# This may be replaced when dependencies are built.
