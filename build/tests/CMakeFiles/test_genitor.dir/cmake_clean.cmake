file(REMOVE_RECURSE
  "CMakeFiles/test_genitor.dir/genitor/genitor_test.cpp.o"
  "CMakeFiles/test_genitor.dir/genitor/genitor_test.cpp.o.d"
  "test_genitor"
  "test_genitor.pdb"
  "test_genitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
