file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/estimates_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/estimates_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/feasibility_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/feasibility_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/metrics_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/metrics_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/priority_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/priority_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/session_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/session_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/tightness_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/tightness_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/utilization_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/utilization_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
