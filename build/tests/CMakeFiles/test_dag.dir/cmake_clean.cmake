file(REMOVE_RECURSE
  "CMakeFiles/test_dag.dir/dag/dag_allocator_test.cpp.o"
  "CMakeFiles/test_dag.dir/dag/dag_allocator_test.cpp.o.d"
  "CMakeFiles/test_dag.dir/dag/dag_analysis_test.cpp.o"
  "CMakeFiles/test_dag.dir/dag/dag_analysis_test.cpp.o.d"
  "CMakeFiles/test_dag.dir/dag/dag_model_test.cpp.o"
  "CMakeFiles/test_dag.dir/dag/dag_model_test.cpp.o.d"
  "test_dag"
  "test_dag.pdb"
  "test_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
