file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/baselines_test.cpp.o"
  "CMakeFiles/test_core.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/class_based_test.cpp.o"
  "CMakeFiles/test_core.dir/core/class_based_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/decode_test.cpp.o"
  "CMakeFiles/test_core.dir/core/decode_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dynamic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dynamic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/exact_test.cpp.o"
  "CMakeFiles/test_core.dir/core/exact_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/imr_test.cpp.o"
  "CMakeFiles/test_core.dir/core/imr_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/local_search_test.cpp.o"
  "CMakeFiles/test_core.dir/core/local_search_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ordered_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ordered_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/psg_test.cpp.o"
  "CMakeFiles/test_core.dir/core/psg_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
